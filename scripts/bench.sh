#!/usr/bin/env bash
# Performance baseline for the FrameFeedback reproduction.
#
# Runs the tier-1 benchmarks (scheduler churn, one full scenario run),
# times the whole experiment suite (ffexperiments -exp all) and the
# K_P x K_D gain sweep at -parallel 1 vs -parallel $PARALLEL, and
# writes everything to BENCH_<date>.json. Committing that file gives
# the repo a tracked perf trajectory: future PRs diff their numbers
# against the latest baseline.
#
# Environment knobs:
#   BENCHTIME  go test -benchtime for the micro benches (default 2s;
#              CI smoke uses 1x)
#   FLEETTIME  go test -benchtime for the 100k-device fleet bench
#              (default 1x: one full run is the measurement)
#   PARALLEL   worker count for the parallel sweep timing (default 4)
#   REPS       wall-clock repetitions, best-of (default 3)
#   OUT        output path (default BENCH_<YYYY-MM-DD>.json)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-2s}"
FLEETTIME="${FLEETTIME:-1x}"
PARALLEL="${PARALLEL:-4}"
REPS="${REPS:-3}"
OUT="${OUT:-BENCH_$(date +%Y-%m-%d).json}"

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
BIN="$tmpdir/ffexperiments"

echo "== building ffexperiments" >&2
go build -o "$BIN" ./cmd/ffexperiments

echo "== micro benchmarks (benchtime=$BENCHTIME)" >&2
churn="$(go test -run '^$' -bench 'BenchmarkSchedulerChurn$' -benchmem -benchtime "$BENCHTIME" ./internal/simtime/ | awk '/^BenchmarkSchedulerChurn/')"
scen="$(go test -run '^$' -bench 'BenchmarkScenarioRun$' -benchmem -benchtime "$BENCHTIME" . | awk '/^BenchmarkScenarioRun/')"
clus="$(go test -run '^$' -bench 'BenchmarkClusterDispatch$' -benchmem -benchtime "$BENCHTIME" ./internal/cluster/ | awk '/^BenchmarkClusterDispatch/')"
# BenchmarkTracedSpanPath is deliberately not prefix-matched here: the
# nil-tracer path is the fence (tracing must stay free when off).
span="$(go test -run '^$' -bench 'BenchmarkSpanPath$' -benchmem -benchtime "$BENCHTIME" ./internal/spans/ | awk '/^BenchmarkSpanPath/')"
wheel="$(go test -run '^$' -bench 'BenchmarkWheelChurn$' -benchmem -benchtime "$BENCHTIME" ./internal/simtime/ | awk '/^BenchmarkWheelChurn/')"
smerge="$(go test -run '^$' -bench 'BenchmarkShardedMerge$' -benchmem -benchtime "$BENCHTIME" ./internal/simtime/ | awk '/^BenchmarkShardedMerge/')"
echo "$churn" >&2
echo "$scen" >&2
echo "$clus" >&2
echo "$span" >&2
echo "$wheel" >&2
echo "$smerge" >&2

echo "== fleet benchmark (100k devices, benchtime=$FLEETTIME)" >&2
fleet="$(go test -run '^$' -bench 'BenchmarkFleetRun$' -benchmem -benchtime "$FLEETTIME" -timeout 30m . | awk '/^BenchmarkFleetRun/')"
echo "$fleet" >&2

# bench_field LINE N extracts the value preceding the Nth unit column
# of a `go test -bench` output line (ns/op, B/op, allocs/op).
bench_field() {
  echo "$1" | awk -v unit="$2" '{for (i = 1; i <= NF; i++) if ($i == unit) print $(i-1)}'
}

churn_ns="$(bench_field "$churn" "ns/op")"
churn_b="$(bench_field "$churn" "B/op")"
churn_allocs="$(bench_field "$churn" "allocs/op")"
scen_ns="$(bench_field "$scen" "ns/op")"
scen_b="$(bench_field "$scen" "B/op")"
scen_allocs="$(bench_field "$scen" "allocs/op")"
scen_events="$(bench_field "$scen" "events/run")"
clus_ns="$(bench_field "$clus" "ns/op")"
clus_b="$(bench_field "$clus" "B/op")"
clus_allocs="$(bench_field "$clus" "allocs/op")"
span_ns="$(bench_field "$span" "ns/op")"
span_b="$(bench_field "$span" "B/op")"
span_allocs="$(bench_field "$span" "allocs/op")"
wheel_ns="$(bench_field "$wheel" "ns/op")"
wheel_b="$(bench_field "$wheel" "B/op")"
wheel_allocs="$(bench_field "$wheel" "allocs/op")"
smerge_ns="$(bench_field "$smerge" "ns/op")"
smerge_b="$(bench_field "$smerge" "B/op")"
smerge_allocs="$(bench_field "$smerge" "allocs/op")"
fleet_ns="$(bench_field "$fleet" "ns/op")"
fleet_b="$(bench_field "$fleet" "B/op")"
fleet_allocs="$(bench_field "$fleet" "allocs/op")"
fleet_events="$(bench_field "$fleet" "events/run")"
fleet_devs="$(bench_field "$fleet" "devices/s")"
fleet_bytes_dev="$(bench_field "$fleet" "bytes/device")"
# Fleet event throughput: events per run over ns per run.
fleet_eps="$(awk -v e="${fleet_events:-0}" -v ns="${fleet_ns:-0}" 'BEGIN{if (ns > 0) printf "%.0f", e / ns * 1e9; else print 0}')"
# Scenario event throughput: events per run over ns per run.
scen_meps="$(awk -v e="${scen_events:-0}" -v ns="$scen_ns" 'BEGIN{if (ns > 0) printf "%.2f", e / ns * 1000; else print 0}')"

# best_of CMD... runs the command $REPS times, prints the fastest wall
# time in seconds.
best_of() {
  local best=""
  for _ in $(seq "$REPS"); do
    local t0 t1 dt
    t0="$(date +%s.%N)"
    "$@" > /dev/null 2>&1
    t1="$(date +%s.%N)"
    dt="$(awk -v a="$t0" -v b="$t1" 'BEGIN{printf "%.3f", b-a}')"
    if [ -z "$best" ] || awk -v d="$dt" -v b="$best" 'BEGIN{exit !(d < b)}'; then
      best="$dt"
    fi
  done
  echo "$best"
}

echo "== suite wall clock (best of $REPS)" >&2
all_s="$(best_of "$BIN" -exp all)"
echo "ffexperiments -exp all: ${all_s}s" >&2
sweep1_s="$(best_of "$BIN" -exp sweep -parallel 1)"
echo "ffexperiments -exp sweep -parallel 1: ${sweep1_s}s" >&2
sweepN_s="$(best_of "$BIN" -exp sweep -parallel "$PARALLEL")"
echo "ffexperiments -exp sweep -parallel $PARALLEL: ${sweepN_s}s" >&2

echo "== fleet shard fan-out (best of $REPS)" >&2
fleet1_s="$(best_of "$BIN" -exp fleet -fleet-shards 1 -fleet-workers 1)"
echo "ffexperiments -exp fleet -fleet-shards 1 -fleet-workers 1: ${fleet1_s}s" >&2
fleetN_s="$(best_of "$BIN" -exp fleet -fleet-shards "$PARALLEL" -fleet-workers "$PARALLEL")"
echo "ffexperiments -exp fleet -fleet-shards $PARALLEL -fleet-workers $PARALLEL: ${fleetN_s}s" >&2

cpus="$(getconf _NPROCESSORS_ONLN)"
# GOMAXPROCS: the explicit env override if set, else the Go runtime
# default (all visible CPUs).
gomaxprocs="${GOMAXPROCS:-$cpus}"

# On a single visible CPU the -parallel comparison measures goroutine
# scheduling overhead, not fan-out: a sub-1.0 "speedup" there is
# misleading, so the field is skipped explicitly instead.
if [ "$cpus" -lt 2 ]; then
  speedup='"skipped_single_cpu"'
  fleet_speedup='"skipped_single_cpu"'
else
  speedup="$(awk -v a="$sweep1_s" -v b="$sweepN_s" 'BEGIN{printf "%.2f", a/b}')"
  fleet_speedup="$(awk -v a="$fleet1_s" -v b="$fleetN_s" 'BEGIN{printf "%.2f", a/b}')"
fi

# Event-throughput accounting from the verbose line.
verbose_line="$("$BIN" -exp sweep -parallel 1 -verbose | awk '/framefeedback_sim_events_fired_total/')"
events_fired="$(echo "$verbose_line" | sed -n 's/.*framefeedback_sim_events_fired_total=\([0-9]*\).*/\1/p')"
events_rate="$(echo "$verbose_line" | sed -n 's/.*rate=\([0-9.]*\)M events\/s.*/\1/p')"

goversion="$(go env GOVERSION)"

cat > "$OUT" <<EOF
{
  "date": "$(date +%Y-%m-%d)",
  "go": "$goversion",
  "cpus": $cpus,
  "gomaxprocs": $gomaxprocs,
  "benchtime": "$BENCHTIME",
  "benchmarks": {
    "SchedulerChurn": {
      "ns_per_op": $churn_ns,
      "bytes_per_op": $churn_b,
      "allocs_per_op": $churn_allocs
    },
    "ScenarioRun": {
      "ns_per_op": $scen_ns,
      "bytes_per_op": $scen_b,
      "allocs_per_op": $scen_allocs,
      "events_per_run": ${scen_events:-0},
      "million_events_per_second": $scen_meps
    },
    "ClusterDispatch": {
      "ns_per_op": $clus_ns,
      "bytes_per_op": $clus_b,
      "allocs_per_op": $clus_allocs
    },
    "SpanPath": {
      "ns_per_op": $span_ns,
      "bytes_per_op": $span_b,
      "allocs_per_op": $span_allocs
    },
    "WheelChurn": {
      "ns_per_op": $wheel_ns,
      "bytes_per_op": $wheel_b,
      "allocs_per_op": $wheel_allocs
    },
    "ShardedMerge": {
      "ns_per_op": $smerge_ns,
      "bytes_per_op": $smerge_b,
      "allocs_per_op": $smerge_allocs
    },
    "FleetRun": {
      "ns_per_op": $fleet_ns,
      "bytes_per_op": $fleet_b,
      "allocs_per_op": $fleet_allocs
    }
  },
  "fleet_devices": 100000,
  "fleet_events_per_run": ${fleet_events:-0},
  "fleet_events_per_second": ${fleet_eps:-0},
  "fleet_devices_per_second": ${fleet_devs:-0},
  "fleet_bytes_per_device": ${fleet_bytes_dev:-0},
  "suite": {
    "ffexperiments_all_seconds": $all_s,
    "sweep_parallel_1_seconds": $sweep1_s,
    "sweep_parallel_${PARALLEL}_seconds": $sweepN_s,
    "sweep_parallel_workers": $PARALLEL,
    "sweep_speedup_x": $speedup,
    "sweep_sim_events_fired_total": ${events_fired:-0},
    "sweep_million_events_per_second_sequential": ${events_rate:-0},
    "fleet_shards_1_seconds": $fleet1_s,
    "fleet_shards_${PARALLEL}_seconds": $fleetN_s,
    "fleet_speedup_x": $fleet_speedup
  },
  "note": "sweep_speedup_x compares -parallel $PARALLEL vs -parallel 1, and fleet_speedup_x compares -fleet-shards/-fleet-workers $PARALLEL vs 1, on this machine's $cpus visible CPU(s) (GOMAXPROCS=$gomaxprocs); on a single CPU both are skipped. The fan-out targets apply on 4+ cores; single-core gains come from the zero-alloc DES hot path (SchedulerChurn/WheelChurn allocs_per_op=0) and the timing-wheel + sharded-barrier fast path (WheelChurn, ShardedMerge). fleet_* fields track BenchmarkFleetRun: 100k sharded-engine devices over the full default schedule."
}
EOF

echo "== wrote $OUT" >&2
cat "$OUT"

// Command tracecheck validates an exported Chrome trace-event file
// (ffsim/ffexperiments -trace-out) without needing a browser: it is
// the CI half of the Perfetto workflow (`make trace-smoke`).
//
// Usage:
//
//	go run ./scripts/tracecheck trace.json
//
// Checks, in order:
//   - the file is a JSON object with a traceEvents array and
//     displayTimeUnit "ms" (the shape both chrome://tracing and
//     ui.perfetto.dev load);
//   - every event is an "M" metadata or "X" complete event with a
//     name, and every "X" event has a non-negative microsecond
//     timestamp and duration;
//   - every frame track (pid = tenant, tid = frame) has exactly one
//     "frame <status>" envelope event, and all of its stage events
//     fall inside the envelope's [ts, ts+dur] window;
//   - at least one event exists per phase so an empty export cannot
//     pass.
//
// On success it prints a one-line summary; any violation prints the
// offending event and exits 1.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

type event struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  uint64         `json:"tid"`
	Args map[string]any `json:"args"`
}

type trace struct {
	TraceEvents     []event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

type track struct {
	pid int
	tid uint64
}

type window struct {
	start, end float64
	count      int
}

// epsilonUS absorbs float64 seconds→microseconds rounding; stage and
// envelope instants are exact in simulation time, not after export.
const epsilonUS = 1e-3

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracecheck: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	if len(os.Args) != 2 {
		fail("usage: tracecheck <trace.json>")
	}
	raw, err := os.ReadFile(os.Args[1])
	if err != nil {
		fail("%v", err)
	}
	var tr trace
	if err := json.Unmarshal(raw, &tr); err != nil {
		fail("%s: not a Chrome trace object: %v", os.Args[1], err)
	}
	if tr.DisplayTimeUnit != "ms" {
		fail("displayTimeUnit = %q, want \"ms\"", tr.DisplayTimeUnit)
	}
	if len(tr.TraceEvents) == 0 {
		fail("traceEvents is empty")
	}

	envelopes := map[track]*window{}
	meta, frames, stages, faulted := 0, 0, 0, 0
	for i, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			if ev.Name != "process_name" {
				fail("event %d: metadata name %q, want \"process_name\"", i, ev.Name)
			}
		case "X":
			if ev.Name == "" {
				fail("event %d: complete event with empty name", i)
			}
			if ev.Ts < 0 || ev.Dur < 0 {
				fail("event %d (%s): negative ts/dur (%f, %f)", i, ev.Name, ev.Ts, ev.Dur)
			}
			if len(ev.Name) > 6 && ev.Name[:6] == "frame " {
				frames++
				k := track{ev.Pid, ev.Tid}
				if w := envelopes[k]; w != nil {
					fail("event %d: duplicate envelope for tenant %d frame %d", i, ev.Pid, ev.Tid)
				}
				envelopes[k] = &window{start: ev.Ts, end: ev.Ts + ev.Dur}
				if _, ok := ev.Args["faults"]; ok {
					faulted++
				}
			} else {
				stages++
			}
		default:
			fail("event %d (%s): phase %q, want \"M\" or \"X\"", i, ev.Name, ev.Ph)
		}
	}
	if meta == 0 || frames == 0 || stages == 0 {
		fail("missing a phase: %d metadata, %d envelopes, %d stage events", meta, frames, stages)
	}

	// Second pass: every stage event must sit inside its frame's
	// envelope (late downlinks extend the envelope at export time, so
	// containment is exact up to float rounding).
	for i, ev := range tr.TraceEvents {
		if ev.Ph != "X" || (len(ev.Name) > 6 && ev.Name[:6] == "frame ") {
			continue
		}
		w := envelopes[track{ev.Pid, ev.Tid}]
		if w == nil {
			fail("event %d (%s): tenant %d frame %d has no envelope", i, ev.Name, ev.Pid, ev.Tid)
		}
		if ev.Ts < w.start-epsilonUS || ev.Ts+ev.Dur > w.end+epsilonUS {
			fail("event %d (%s): [%f, %f] outside envelope [%f, %f] for tenant %d frame %d",
				i, ev.Name, ev.Ts, ev.Ts+ev.Dur, w.start, w.end, ev.Pid, ev.Tid)
		}
		w.count++
	}
	for k, w := range envelopes {
		if w.count == 0 {
			fail("tenant %d frame %d: envelope with no stage events", k.pid, k.tid)
		}
	}

	fmt.Printf("tracecheck: %s OK — %d events (%d frames, %d stage spans, %d metadata, %d fault-annotated)\n",
		os.Args[1], len(tr.TraceEvents), frames, stages, meta, faulted)
}

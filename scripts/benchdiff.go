// Command benchdiff compares two bench.sh baseline files
// (BENCH_<date>.json) metric by metric and fails when a gated metric
// regresses beyond its threshold.
//
// Usage:
//
//	go run ./scripts -alloc-threshold 10 BENCH_old.json bench-new.json
//	make benchdiff BASELINE=BENCH_2026-08-05.json CURRENT=bench-ci.json
//
// Gating policy: allocs/op is deterministic for these benchmarks (each
// ScenarioRun iteration is a self-contained simulation, so its
// allocation count does not vary with -benchtime or machine load),
// which makes it safe to gate hard in CI even on a 1x smoke run.
// ns/op and B/op on shared CI runners are noisy, so they are reported
// — and gated only when their thresholds are explicitly set > 0.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

type metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type baseline struct {
	Date       string             `json:"date"`
	Benchmarks map[string]metrics `json:"benchmarks"`
}

func load(path string) (*baseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b baseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(b.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks section", path)
	}
	return &b, nil
}

// pct returns the relative change from base to cur in percent.
// A zero base with a non-zero cur is an infinite regression; zero to
// zero is no change.
func pct(base, cur float64) float64 {
	if base == 0 {
		if cur == 0 {
			return 0
		}
		return float64(1 << 62) // effectively infinite
	}
	return (cur - base) / base * 100
}

// check appends a formatted row and reports whether the metric busts
// its threshold (threshold <= 0 means report-only).
func check(rows *[]string, bench, metric string, base, cur, threshold float64) bool {
	delta := pct(base, cur)
	gate := "        "
	fail := threshold > 0 && delta > threshold
	if fail {
		gate = fmt.Sprintf(" FAIL>%g%%", threshold)
	} else if threshold > 0 {
		gate = fmt.Sprintf("   ok<%g%%", threshold)
	}
	deltaStr := fmt.Sprintf("%+.1f%%", delta)
	if delta >= float64(1<<62) {
		deltaStr = "+inf%"
	}
	*rows = append(*rows, fmt.Sprintf("%-16s %-10s %14.1f %14.1f %9s%s",
		bench, metric, base, cur, deltaStr, gate))
	return fail
}

func main() {
	allocThreshold := flag.Float64("alloc-threshold", 10,
		"max allowed allocs/op regression in percent (<=0 disables the gate)")
	nsThreshold := flag.Float64("ns-threshold", 0,
		"max allowed ns/op regression in percent (<=0 reports only; CI timing is noisy)")
	bytesThreshold := flag.Float64("bytes-threshold", 10,
		"max allowed B/op regression in percent (<=0 disables the gate)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] <baseline.json> <current.json>")
		os.Exit(2)
	}
	old, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cur, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(old.Benchmarks))
	for name := range old.Benchmarks {
		if _, ok := cur.Benchmarks[name]; ok {
			names = append(names, name)
		} else {
			fmt.Fprintf(os.Stderr, "benchdiff: %s missing from %s (skipped)\n", name, flag.Arg(1))
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmarks in common")
		os.Exit(2)
	}

	rows := []string{fmt.Sprintf("%-16s %-10s %14s %14s %9s %s",
		"benchmark", "metric", "baseline", "current", "delta", "gate")}
	failed := false
	for _, name := range names {
		o, c := old.Benchmarks[name], cur.Benchmarks[name]
		failed = check(&rows, name, "allocs/op", o.AllocsPerOp, c.AllocsPerOp, *allocThreshold) || failed
		failed = check(&rows, name, "B/op", o.BytesPerOp, c.BytesPerOp, *bytesThreshold) || failed
		failed = check(&rows, name, "ns/op", o.NsPerOp, c.NsPerOp, *nsThreshold) || failed
	}
	fmt.Printf("benchdiff: %s (%s) vs %s (%s)\n", flag.Arg(0), old.Date, flag.Arg(1), cur.Date)
	for _, r := range rows {
		fmt.Println(r)
	}
	if failed {
		fmt.Println("benchdiff: REGRESSION — a gated metric exceeded its threshold")
		os.Exit(1)
	}
	fmt.Println("benchdiff: OK")
}

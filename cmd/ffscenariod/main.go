// Command ffscenariod drives structured fault scenarios against a
// live FrameFeedback deployment: it owns an ffserver child process
// and an in-process TCP fault proxy, walks each scenario through the
// three soak phases — stabilize, inject, recover — and judges
// recovery by polling the ffloadgen fleet's convergence metrics.
//
// Topology (all on loopback by default):
//
//	ffloadgen ──TCP──▶ proxy (in ffscenariod) ──TCP──▶ ffserver (child)
//	    │                                                   ▲
//	    └── /debug/vars ◀── ffscenariod polls ──▶ /control ──┘
//
// The scenario vocabulary is internal/faults: each -scenarios entry
// names a faults.Kind, mapped at startup onto a real actuator —
// server_crash kills and restarts the ffserver child, gpu_stall POSTs
// to the server's /control/slowdown endpoint, link_partition and
// link_latency actuate the fault proxy. Kinds with no live actuator
// (tenant_churn, tick_jitter) are rejected before anything starts,
// with a typed faults.UnsupportedKindError.
//
// A scenario passes when, after the fault clears, the fleet's settled
// ratio — the fraction of devices whose timeout rate is back inside
// the paper's [0.05, 0.15]·F_s equilibrium band (or fully converged)
// — reaches -settle-ratio within -recover-within. Verdicts stream to
// stdout as JSON lines (and to -verdicts when set); the exit code is
// 0 only if every scenario passed.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/faults"
	"repro/internal/realnet"
	"repro/internal/simtime"
	"repro/internal/telemetry"
)

var (
	listenFlag    = flag.String("listen", "127.0.0.1:9770", "fault-proxy listen address (point ffloadgen here)")
	serverBinFlag = flag.String("server-bin", "ffserver", "path to the ffserver binary")
	serverAddr    = flag.String("server-addr", "127.0.0.1:9771", "address the ffserver child listens on")
	serverTelem   = flag.String("server-telemetry", "127.0.0.1:9772", "ffserver telemetry/control address")
	serverScale   = flag.Float64("server-timescale", 1, "ffserver -timescale")
	serverBatch   = flag.Int("server-maxbatch", 15, "ffserver -maxbatch")
	serverConns   = flag.Int("server-maxconns", 0, "ffserver -max-conns")
	loadgenURL    = flag.String("loadgen-metrics", "http://127.0.0.1:9773", "base URL of ffloadgen's telemetry server")
	scenariosFlag = flag.String("scenarios", "server_crash,link_partition,link_latency", "comma-separated faults.Kind names to run, in order")
	stabilizeFlag = flag.Duration("stabilize", 90*time.Second, "budget for the fleet to settle before each injection")
	injectForFlag = flag.Duration("inject-for", 15*time.Second, "how long each fault stays active")
	recoverFlag   = flag.Duration("recover-within", 90*time.Second, "recovery budget after the fault clears")
	settleFlag    = flag.Float64("settle-ratio", 0.8, "settled-device fraction that counts as converged")
	latencyFlag   = flag.Duration("latency", 150*time.Millisecond, "injected one-way link latency (link_latency)")
	stallFlag     = flag.Float64("stall-factor", 4, "GPU service-time multiplier (gpu_stall)")
	pollFlag      = flag.Duration("poll", time.Second, "settled-ratio poll interval")
	verdictsFlag  = flag.String("verdicts", "", "also append verdict JSON lines to this file")
	telemetryFlag = flag.String("telemetry-addr", "", "debug HTTP listen address for scenariod's own metrics (empty disables)")
)

// kindNames maps -scenarios vocabulary to faults kinds. Every DES
// kind is listed — unsupported ones are rejected by faults.CheckLive
// with a typed error, not silently skipped.
var kindNames = map[string]faults.Kind{
	"server_crash":   faults.ServerCrash,
	"gpu_stall":      faults.GPUStall,
	"link_partition": faults.LinkPartition,
	"tenant_churn":   faults.TenantChurn,
	"tick_jitter":    faults.TickJitter,
	"link_latency":   faults.LinkLatency,
}

// verdict is one scenario's machine-readable outcome.
type verdict struct {
	Scenario        string  `json:"scenario"`
	Pass            bool    `json:"pass"`
	Reason          string  `json:"reason,omitempty"`
	StabilizeSec    float64 `json:"stabilize_seconds"`
	RecoverySec     float64 `json:"recovery_seconds"`
	SettledRatio    float64 `json:"settled_ratio"`
	SettleThreshold float64 `json:"settle_threshold"`
	Time            string  `json:"time"`
}

// metrics is scenariod's own exported state.
type metrics struct {
	phase      *telemetry.GaugeVec
	injections *telemetry.CounterVec
	recovery   *telemetry.Histogram
	lastRec    *telemetry.FloatGauge
	passed     *telemetry.Counter
	failed     *telemetry.Counter
}

// Scenario phases exported via framefeedback_scenario_phase.
const (
	phaseIdle = iota
	phaseStabilize
	phaseInject
	phaseRecover
)

func newMetrics(reg *telemetry.Registry) *metrics {
	return &metrics{
		phase: reg.GaugeVec("framefeedback_scenario_phase",
			"Scenario state: 0 idle, 1 stabilize, 2 inject, 3 recover.", "scenario"),
		injections: reg.CounterVec("framefeedback_scenario_injections_total",
			"Faults injected, by kind.", "kind"),
		recovery: reg.Histogram("framefeedback_scenario_recovery_seconds",
			"Time from fault clear to the fleet re-settling.", faults.RecoveryBuckets),
		lastRec: reg.FloatGauge("framefeedback_scenario_last_recovery_seconds",
			"Most recent scenario's recovery time."),
		passed: reg.Counter("framefeedback_scenario_passed_total",
			"Scenarios that reconverged within budget."),
		failed: reg.Counter("framefeedback_scenario_failed_total",
			"Scenarios that failed to stabilize or reconverge."),
	}
}

// serverProc manages the ffserver child process.
type serverProc struct {
	bin    string
	logger *log.Logger
	cmd    *exec.Cmd
}

func (p *serverProc) args() []string {
	a := []string{
		"-addr", *serverAddr,
		"-timescale", fmt.Sprint(*serverScale),
		"-maxbatch", fmt.Sprint(*serverBatch),
		"-stats", "0",
		"-telemetry-addr", *serverTelem,
		"-control",
	}
	if *serverConns > 0 {
		a = append(a, "-max-conns", fmt.Sprint(*serverConns))
	}
	return a
}

// start launches the child and waits for its listen port.
func (p *serverProc) start() error {
	cmd := exec.Command(p.bin, p.args()...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("start %s: %w", p.bin, err)
	}
	p.cmd = cmd
	if err := waitForPort(*serverAddr, 10*time.Second); err != nil {
		p.stop()
		return err
	}
	p.logger.Printf("ffserver up on %s (pid %d)", *serverAddr, cmd.Process.Pid)
	return nil
}

// stop kills the child outright — this is the crash actuator, not a
// graceful shutdown.
func (p *serverProc) stop() error {
	if p.cmd == nil || p.cmd.Process == nil {
		return nil
	}
	p.cmd.Process.Kill()
	p.cmd.Wait()
	p.logger.Printf("ffserver killed (pid %d)", p.cmd.Process.Pid)
	p.cmd = nil
	return nil
}

func waitForPort(addr string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", addr, 500*time.Millisecond)
		if err == nil {
			conn.Close()
			return nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("%s not reachable within %v", addr, budget)
}

// settledRatio scrapes the loadgen's convergence gauge.
func settledRatio() (float64, error) {
	resp, err := http.Get(*loadgenURL + "/debug/vars")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var vars map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		return 0, err
	}
	v, ok := vars["framefeedback_loadgen_settled_ratio"].(float64)
	if !ok {
		return 0, errors.New("framefeedback_loadgen_settled_ratio missing from loadgen vars")
	}
	return v, nil
}

// waitSettled polls until the fleet's settled ratio reaches threshold
// or the budget runs out; it returns the elapsed time, the last ratio
// seen, and whether the threshold was reached. Scrape errors are
// tolerated (the loadgen may still be starting, or mid-restart).
func waitSettled(threshold float64, budget time.Duration, stop <-chan struct{}, logger *log.Logger) (time.Duration, float64, bool) {
	start := time.Now()
	deadline := start.Add(budget)
	last := -1.0
	for {
		ratio, err := settledRatio()
		if err != nil {
			logger.Printf("loadgen scrape: %v", err)
		} else {
			last = ratio
			if ratio >= threshold {
				return time.Since(start), ratio, true
			}
		}
		if !time.Now().Before(deadline) {
			return time.Since(start), last, false
		}
		timer := time.NewTimer(*pollFlag)
		select {
		case <-timer.C:
		case <-stop:
			timer.Stop()
			return time.Since(start), last, false
		}
	}
}

// sleepInterruptible sleeps d unless stop fires.
func sleepInterruptible(d time.Duration, stop <-chan struct{}) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-stop:
		return false
	}
}

// buildPlan turns the scenario list into a validated faults.Plan,
// with the flag-driven parameters filled per kind. The At offsets are
// synthetic (scenarios run back to back in wall time) but keep the
// plan disjoint for Validate.
func buildPlan(names []string) (faults.Plan, error) {
	plan := make(faults.Plan, 0, len(names))
	for i, name := range names {
		kind, ok := kindNames[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown scenario %q (known: server_crash, gpu_stall, link_partition, link_latency, tenant_churn, tick_jitter)", name)
		}
		in := faults.Injection{
			Kind:     kind,
			At:       simtime.Time(time.Duration(i) * time.Hour),
			Duration: *injectForFlag,
			Device:   -1,
		}
		switch kind {
		case faults.GPUStall:
			in.Factor = *stallFlag
		case faults.LinkLatency:
			in.Latency = *latencyFlag
		case faults.TenantChurn:
			in.Rate = 1 // placeholder; CheckLive rejects the kind
		case faults.TickJitter:
			in.Jitter = time.Millisecond // placeholder; CheckLive rejects the kind
		}
		plan = append(plan, in)
	}
	return plan, nil
}

func main() {
	flag.Parse()
	logger := log.New(os.Stderr, "ffscenariod: ", log.LstdFlags)

	names := strings.Split(*scenariosFlag, ",")
	plan, err := buildPlan(names)
	if err != nil {
		logger.Fatal(err)
	}

	var reg *telemetry.Registry
	var m *metrics
	if *telemetryFlag != "" {
		reg = telemetry.NewRegistry()
		m = newMetrics(reg)
	} else {
		m = newMetrics(telemetry.NewRegistry()) // unexported registry: metrics become cheap no-op sinks
	}

	var verdictSinks []io.Writer
	verdictSinks = append(verdictSinks, os.Stdout)
	if *verdictsFlag != "" {
		f, err := os.Create(*verdictsFlag)
		if err != nil {
			logger.Fatal(err)
		}
		defer f.Close()
		verdictSinks = append(verdictSinks, f)
	}
	emit := func(v verdict) {
		line, _ := json.Marshal(v)
		for _, w := range verdictSinks {
			fmt.Fprintf(w, "%s\n", line)
		}
	}

	// Live actuators: server child, control endpoint, fault proxy.
	server := &serverProc{bin: *serverBinFlag, logger: logger}
	if err := server.start(); err != nil {
		logger.Fatal(err)
	}
	defer server.stop()

	proxy, err := realnet.NewProxy(realnet.ProxyConfig{
		Addr:   *listenFlag,
		Target: *serverAddr,
		Logger: logger,
	})
	if err != nil {
		server.stop()
		logger.Fatal(err)
	}
	defer proxy.Close()
	logger.Printf("fault proxy on %s -> %s", proxy.Addr(), *serverAddr)

	controlURL := "http://" + *serverTelem
	acts := faults.LiveActuators{
		ServerCrash: func(down bool) error {
			if down {
				return server.stop()
			}
			return server.start()
		},
		GPUStall: func(factor float64) error {
			resp, err := http.Post(fmt.Sprintf("%s/control/slowdown?factor=%g", controlURL, factor), "", nil)
			if err != nil {
				return err
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("control/slowdown: %s", resp.Status)
			}
			return nil
		},
		Partition: func(on bool) error { proxy.SetPartition(on); return nil },
		Latency:   func(d time.Duration) error { proxy.SetLatency(d); return nil },
	}

	// Startup gate: every requested kind must map to a live actuator.
	if err := acts.CheckLive(plan); err != nil {
		var uk *faults.UnsupportedKindError
		if errors.As(err, &uk) {
			logger.Printf("scenario %s has no live actuator: %s", uk.Kind, uk.Reason)
		}
		server.stop()
		proxy.Close()
		logger.Fatal(err)
	}

	if reg != nil {
		debug, err := telemetry.Serve(*telemetryFlag, telemetry.NewMux(reg, nil))
		if err != nil {
			logger.Fatal(err)
		}
		defer debug.Close()
		logger.Printf("telemetry on http://%s/", debug.Addr())
	}

	stopCh := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		logger.Printf("signal %v: aborting", s)
		close(stopCh)
	}()

	allPass := true
	for i, in := range plan {
		name := strings.TrimSpace(names[i])
		select {
		case <-stopCh:
			allPass = false
		default:
		}
		if !allPass {
			break
		}
		logger.Printf("=== scenario %d/%d: %s ===", i+1, len(plan), name)

		// Phase 1: stabilize.
		m.phase.With(name).Set(phaseStabilize)
		stabElapsed, ratio, ok := waitSettled(*settleFlag, *stabilizeFlag, stopCh, logger)
		if !ok {
			m.phase.With(name).Set(phaseIdle)
			m.failed.Inc()
			emit(verdict{
				Scenario: name, Pass: false, Reason: "stabilize_timeout",
				StabilizeSec: stabElapsed.Seconds(), SettledRatio: ratio,
				SettleThreshold: *settleFlag, Time: time.Now().UTC().Format(time.RFC3339),
			})
			allPass = false
			continue
		}
		logger.Printf("%s: stabilized at %.2f in %v", name, ratio, stabElapsed.Round(time.Millisecond))

		// Phase 2: inject, hold, clear.
		m.phase.With(name).Set(phaseInject)
		m.injections.With(in.Kind.String()).Inc()
		logger.Printf("%s: injecting for %v", name, *injectForFlag)
		if err := acts.Apply(in, false); err != nil {
			logger.Fatalf("%s: inject: %v", name, err)
		}
		sleepInterruptible(*injectForFlag, stopCh)
		if err := acts.Apply(in, true); err != nil {
			logger.Fatalf("%s: clear: %v", name, err)
		}

		// Phase 3: recover.
		m.phase.With(name).Set(phaseRecover)
		recElapsed, ratio, ok := waitSettled(*settleFlag, *recoverFlag, stopCh, logger)
		m.phase.With(name).Set(phaseIdle)
		v := verdict{
			Scenario: name, Pass: ok,
			StabilizeSec: stabElapsed.Seconds(), RecoverySec: recElapsed.Seconds(),
			SettledRatio: ratio, SettleThreshold: *settleFlag,
			Time: time.Now().UTC().Format(time.RFC3339),
		}
		if ok {
			m.passed.Inc()
			m.recovery.Observe(recElapsed.Seconds())
			m.lastRec.Set(recElapsed.Seconds())
			logger.Printf("%s: PASS — reconverged to %.2f in %v", name, ratio, recElapsed.Round(time.Millisecond))
		} else {
			m.failed.Inc()
			v.Reason = "recovery_timeout"
			allPass = false
			logger.Printf("%s: FAIL — settled ratio %.2f after %v", name, ratio, recElapsed.Round(time.Millisecond))
		}
		emit(v)
	}

	proxy.Close()
	server.stop()
	if !allPass {
		logger.Println("verdict: FAIL")
		os.Exit(1)
	}
	logger.Println("verdict: PASS — all scenarios reconverged")
}

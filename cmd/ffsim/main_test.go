package main

import (
	"flag"
	"testing"

	"repro/internal/simnet"
)

// setFlags applies a flag map and returns a restore function.
func setFlags(t *testing.T, kv map[string]string) {
	t.Helper()
	for k, v := range kv {
		old := flag.Lookup(k).Value.String()
		if err := flag.Set(k, v); err != nil {
			t.Fatalf("set %s=%s: %v", k, v, err)
		}
		t.Cleanup(func() { flag.Set(k, old) })
	}
}

func TestBuildConfigDefaults(t *testing.T) {
	cfg, err := buildConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Policy == nil {
		t.Fatal("no policy built")
	}
	if cfg.FrameLimit != 4000 || cfg.FS != 30 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	if cfg.Policy().Name() != "FrameFeedback" {
		t.Fatalf("default policy = %q", cfg.Policy().Name())
	}
}

func TestBuildConfigPolicies(t *testing.T) {
	for arg, want := range map[string]string{
		"framefeedback": "FrameFeedback",
		"localonly":     "LocalOnly",
		"alwaysoffload": "AlwaysOffload",
		"allornothing":  "AllOrNothing",
	} {
		setFlags(t, map[string]string{"policy": arg})
		cfg, err := buildConfig()
		if err != nil {
			t.Fatalf("%s: %v", arg, err)
		}
		if got := cfg.Policy().Name(); got != want {
			t.Fatalf("policy %s built %q", arg, got)
		}
	}
}

func TestBuildConfigUnknownPolicy(t *testing.T) {
	setFlags(t, map[string]string{"policy": "nonsense"})
	if _, err := buildConfig(); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestBuildConfigCustomBandwidth(t *testing.T) {
	setFlags(t, map[string]string{"policy": "framefeedback", "bandwidth": "4", "loss": "0.07"})
	cfg, err := buildConfig()
	if err != nil {
		t.Fatal(err)
	}
	c := cfg.Network.At(0)
	if c.BandwidthBps != simnet.Mbps(4) || c.Loss != 0.07 {
		t.Fatalf("custom network = %+v", c)
	}
}

func TestBuildConfigTableVNetwork(t *testing.T) {
	setFlags(t, map[string]string{"network": "tablev", "bandwidth": "0"})
	cfg, err := buildConfig()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Network) != 6 {
		t.Fatalf("Table V schedule has %d phases, want 6", len(cfg.Network))
	}
}

func TestBuildConfigUnknownNetwork(t *testing.T) {
	setFlags(t, map[string]string{"network": "wat", "bandwidth": "0"})
	if _, err := buildConfig(); err == nil {
		t.Fatal("unknown network accepted")
	}
}

func TestBuildConfigLoads(t *testing.T) {
	setFlags(t, map[string]string{"network": "clean", "load": "tablevi"})
	cfg, err := buildConfig()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Load) == 0 {
		t.Fatal("tablevi load not applied")
	}
	setFlags(t, map[string]string{"load": "75"})
	cfg, err = buildConfig()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Load) != 1 || cfg.Load[0].Rate != 75 {
		t.Fatalf("constant load = %+v", cfg.Load)
	}
	setFlags(t, map[string]string{"load": "abc"})
	if _, err := buildConfig(); err == nil {
		t.Fatal("bad load accepted")
	}
	setFlags(t, map[string]string{"load": "none"})
}

func TestBuildConfigSolo(t *testing.T) {
	setFlags(t, map[string]string{"solo": "true", "load": "none"})
	cfg, err := buildConfig()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Devices) != 1 {
		t.Fatalf("solo built %d devices", len(cfg.Devices))
	}
}

// Command ffsim runs a single FrameFeedback scenario with configurable
// policy, network and load, printing a summary and optionally the
// ASCII trace and a CSV file.
//
// Usage examples:
//
//	ffsim -policy framefeedback -network tablev -plot
//	ffsim -policy allornothing -load tablevi -csv trace.csv
//	ffsim -policy framefeedback -bandwidth 4 -loss 0.07 -frames 1800
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/config"
	"repro/internal/controller"
	"repro/internal/models"
	"repro/internal/plot"
	"repro/internal/scenario"
	"repro/internal/simnet"
	"repro/internal/spans"
	"repro/internal/trace"
	"repro/internal/workload"
)

var (
	configFlag    = flag.String("config", "", "load the experiment from a JSON file (see experiments/ for samples); other scenario flags are ignored")
	policyFlag    = flag.String("policy", "framefeedback", "policy: framefeedback, localonly, alwaysoffload, allornothing")
	networkFlag   = flag.String("network", "clean", "network schedule: clean, tablev, or custom via -bandwidth/-loss")
	bandwidthFlag = flag.Float64("bandwidth", 0, "constant bandwidth in Mbps (overrides -network)")
	lossFlag      = flag.Float64("loss", 0, "constant packet loss fraction (with -bandwidth)")
	loadFlag      = flag.String("load", "none", "server load: none, tablevi, or a constant req/s number")
	framesFlag    = flag.Uint64("frames", 4000, "frames to stream (paper: 4000)")
	fpsFlag       = flag.Float64("fps", 30, "source frame rate F_s")
	seedFlag      = flag.Uint64("seed", scenario.DefaultSeed, "simulation seed")
	kpFlag        = flag.Float64("kp", 0.2, "FrameFeedback K_P")
	kdFlag        = flag.Float64("kd", 0.26, "FrameFeedback K_D")
	csvFlag       = flag.String("csv", "", "write the per-second trace to this CSV file")
	traceFlag     = flag.String("trace", "", "write a per-offload JSONL event log to this file")
	traceOutFlag  = flag.String("trace-out", "", "write frame-lifecycle spans as Chrome trace-event JSON (load in Perfetto); .jsonl suffix writes span JSONL instead")
	plotFlag      = flag.Bool("plot", false, "render an ASCII chart of P and Po")
	soloFlag      = flag.Bool("solo", false, "run only the measured device (no companion Pis)")
)

func main() {
	flag.Parse()
	cfg, err := buildConfig()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var rec *trace.Recorder
	if *traceFlag != "" {
		// At most one event per captured frame, so FrameLimit sizes
		// the log exactly and the recorder never regrows it.
		rec = trace.NewRecorderCap(int(cfg.FrameLimit))
		cfg.OnOffload = rec.Hook()
	}
	var tracer *spans.Tracer
	if *traceOutFlag != "" {
		tracer = spans.New(spans.Options{KeepAll: true, Cap: int(cfg.FrameLimit)})
		cfg.Trace = tracer
	}
	r := scenario.Run(cfg)

	fmt.Printf("policy:            %s\n", r.PolicyName)
	fmt.Printf("duration:          %d s (%d frames captured)\n", r.Ticks, r.Device.Captured)
	fmt.Printf("mean P:            %.2f inferences/s\n", r.MeanP(0, 0))
	fmt.Printf("mean T:            %.2f timeouts/s\n", r.MeanT(0, 0))
	c := r.Device
	fmt.Printf("frames captured:   %d\n", c.Captured)
	fmt.Printf("offload attempts:  %d (ok %d, timed out %d, rejected %d)\n",
		c.OffloadAttempts, c.OffloadOK, c.OffloadTimedOut, c.OffloadRejected)
	fmt.Printf("local:             %d done, %d dropped\n", c.LocalDone, c.LocalDropped)
	fmt.Printf("server:            %d batches, mean size %.1f, %d rejected\n",
		r.Server.Batches, r.Server.MeanBatchSize(), r.Server.Rejected)
	if r.InjectedSubmitted > 0 {
		fmt.Printf("background load:   %d requests (%d rejected)\n", r.InjectedSubmitted, r.InjectedRejected)
	}

	if *plotFlag {
		fmt.Println()
		ch := plot.NewChart("P (throughput) and Po (offload rate) over time")
		ch.YMin, ch.YMax = 0, *fpsFlag+2
		ch.Add("P", r.P)
		ch.Add("Po", r.Po)
		ch.Render(os.Stdout)
	}
	if *csvFlag != "" {
		f, err := os.Create(*csvFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := r.Table().WriteCSV(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\ntrace written to %s\n", *csvFlag)
	}
	if rec != nil {
		rec.SetMeta(trace.Meta{Seed: int64(cfg.Seed), Scenario: r.PolicyName})
		f, err := os.Create(*traceFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := rec.WriteJSONL(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("offload event log (%d events) written to %s\n", rec.Len(), *traceFlag)
	}
	if tracer != nil {
		if err := writeSpans(tracer, *traceOutFlag, cfg.Seed, r.PolicyName); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("lifecycle trace (%d spans) written to %s\n", tracer.Completed(), *traceOutFlag)
	}
}

// writeSpans serializes a tracer's spans: Chrome trace-event JSON by
// default (drag into Perfetto or chrome://tracing), span JSONL when the
// path ends in .jsonl.
func writeSpans(tr *spans.Tracer, path string, seed uint64, scenarioName string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".jsonl") {
		return tr.WriteJSONL(f, spans.Meta{Seed: seed, Scenario: scenarioName})
	}
	return tr.WriteChromeTrace(f)
}

func buildConfig() (scenario.Config, error) {
	if *configFlag != "" {
		f, err := os.Open(*configFlag)
		if err != nil {
			return scenario.Config{}, err
		}
		defer f.Close()
		exp, err := config.Parse(f)
		if err != nil {
			return scenario.Config{}, err
		}
		return exp.Build()
	}
	cfg := scenario.Config{
		Seed:       *seedFlag,
		FrameLimit: *framesFlag,
		FS:         *fpsFlag,
	}

	switch strings.ToLower(*policyFlag) {
	case "framefeedback":
		cfg.Policy = scenario.FrameFeedbackFactory(controller.Config{KP: *kpFlag, KD: *kdFlag})
	case "localonly":
		cfg.Policy = scenario.LocalOnlyFactory()
	case "alwaysoffload":
		cfg.Policy = scenario.AlwaysOffloadFactory()
	case "allornothing":
		cfg.Policy = scenario.AllOrNothingFactory()
	default:
		return cfg, fmt.Errorf("unknown policy %q", *policyFlag)
	}

	switch {
	case *bandwidthFlag > 0:
		cfg.Network = simnet.Schedule{{Start: 0, Cond: simnet.Conditions{
			BandwidthBps: simnet.Mbps(*bandwidthFlag),
			Loss:         *lossFlag,
			PropDelay:    5 * time.Millisecond,
		}}}
	case strings.EqualFold(*networkFlag, "tablev"):
		cfg.Network = workload.TableV()
	case strings.EqualFold(*networkFlag, "clean"):
		// scenario default
	default:
		return cfg, fmt.Errorf("unknown network %q", *networkFlag)
	}

	switch l := strings.ToLower(*loadFlag); l {
	case "none":
	case "tablevi":
		cfg.Load = workload.TableVI()
	default:
		var rate float64
		if _, err := fmt.Sscanf(l, "%f", &rate); err != nil || rate < 0 {
			return cfg, fmt.Errorf("bad load %q: want none, tablevi or a req/s number", *loadFlag)
		}
		cfg.Load = workload.LoadSchedule{{Start: 0, Rate: rate}}
	}

	if *soloFlag {
		cfg.Devices = []scenario.DeviceSpec{{Profile: models.Pi4B14()}}
	}
	return cfg, nil
}

// Command ffwhatif replays a recorded per-second trace (ffsim -csv
// output) through a different controller, answering "what offload
// rate would policy X have chosen under the conditions policy Y
// actually experienced?" — open-loop screening for candidate
// controllers and tunings without rerunning the simulation.
//
// Usage:
//
//	ffsim -policy allornothing -network tablev -csv run.csv
//	ffwhatif -trace run.csv -policy framefeedback
//	ffwhatif -trace run.csv -policy framefeedback -kp 0.5 -kd 0.1
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/baselines"
	"repro/internal/controller"
	"repro/internal/metrics"
	"repro/internal/plot"
	"repro/internal/trace"
)

var (
	traceFlag  = flag.String("trace", "", "trace CSV written by ffsim -csv (required)")
	policyFlag = flag.String("policy", "framefeedback", "policy to replay: framefeedback, localonly, alwaysoffload, aimd")
	kpFlag     = flag.Float64("kp", 0.2, "FrameFeedback K_P")
	kdFlag     = flag.Float64("kd", 0.26, "FrameFeedback K_D")
	fpsFlag    = flag.Float64("fps", 30, "source frame rate the trace was recorded at")
	plotFlag   = flag.Bool("plot", false, "chart recorded vs replayed Po")
)

func main() {
	flag.Parse()
	if *traceFlag == "" {
		fmt.Fprintln(os.Stderr, "ffwhatif: -trace is required")
		os.Exit(2)
	}
	f, err := os.Open(*traceFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	ms, err := trace.ReadMeasurementsCSV(f, *fpsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(ms) == 0 {
		fmt.Fprintln(os.Stderr, "ffwhatif: trace has no rows")
		os.Exit(1)
	}

	var policy controller.Policy
	switch strings.ToLower(*policyFlag) {
	case "framefeedback":
		policy = controller.NewFrameFeedback(controller.Config{KP: *kpFlag, KD: *kdFlag})
	case "localonly":
		policy = baselines.LocalOnly{}
	case "alwaysoffload":
		policy = baselines.AlwaysOffload{}
	case "aimd":
		policy = baselines.NewAIMD()
	default:
		fmt.Fprintf(os.Stderr, "ffwhatif: unknown policy %q\n", *policyFlag)
		os.Exit(2)
	}

	decisions := trace.WhatIf(policy, ms)
	recorded := make([]float64, len(ms))
	replayed := make([]float64, len(decisions))
	for i := range ms {
		recorded[i] = ms[i].Po
		replayed[i] = decisions[i].Po
	}

	fmt.Printf("trace:     %s (%d ticks)\n", *traceFlag, len(ms))
	fmt.Printf("replayed:  %s\n", policy.Name())
	fmt.Printf("recorded Po:  mean %5.2f  (min %5.2f, max %5.2f)\n",
		metrics.Mean(recorded), metrics.Summarize(recorded).Min, metrics.Summarize(recorded).Max)
	fmt.Printf("replayed Po:  mean %5.2f  (min %5.2f, max %5.2f)\n",
		metrics.Mean(replayed), metrics.Summarize(replayed).Min, metrics.Summarize(replayed).Max)
	fmt.Println("\nNote: open-loop — the replayed policy's choices did not influence")
	fmt.Println("the recorded conditions. Use it to screen tunings, then confirm with")
	fmt.Println("a closed-loop run (ffsim).")

	if *plotFlag {
		fmt.Println()
		ch := plot.NewChart("Recorded vs replayed offload rate")
		ch.YMin, ch.YMax = 0, *fpsFlag+2
		ch.Add("recorded", recorded)
		ch.Add("replayed "+policy.Name(), replayed)
		ch.Render(os.Stdout)
	}
}

package main

import (
	"testing"
	"time"
)

func TestParseDelaySchedule(t *testing.T) {
	sched, err := parseDelaySchedule("30s:300ms,60s:0,90s:1s")
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) != 3 {
		t.Fatalf("entries = %d", len(sched))
	}
	if sched[0].At != 30*time.Second || sched[0].Delay != 300*time.Millisecond {
		t.Fatalf("entry 0 = %+v", sched[0])
	}
	if sched[1].Delay != 0 {
		t.Fatalf("entry 1 delay = %v, want 0", sched[1].Delay)
	}
	if sched[2].Delay != time.Second {
		t.Fatalf("entry 2 = %+v", sched[2])
	}
}

func TestParseDelayScheduleEmpty(t *testing.T) {
	sched, err := parseDelaySchedule("")
	if err != nil || sched != nil {
		t.Fatalf("empty schedule: %v, %v", sched, err)
	}
}

func TestParseDelayScheduleErrors(t *testing.T) {
	for _, bad := range []string{"30s", "xx:300ms", "30s:yy"} {
		if _, err := parseDelaySchedule(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

// Command ffserver runs the real-TCP edge inference server: the
// wall-clock counterpart of the paper's GPU server, with the same
// adaptive batcher (fill while executing, cap 15, reject overflow).
//
// Usage:
//
//	ffserver [-addr :9771] [-maxbatch 15] [-timescale 1] [-stats 5s]
//
// GPU execution is simulated by calibrated sleeps (models.TeslaV100);
// everything else — sockets, framing, concurrency — is real. Pair it
// with ffdevice.
//
// With -telemetry-addr set, a debug HTTP server exposes /metrics
// (Prometheus), /debug/vars (expvar JSON), /debug/pprof/ and a
// human-readable /statusz with batcher state and per-tenant
// rejections.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/realnet"
	"repro/internal/telemetry"
)

var (
	addrFlag      = flag.String("addr", ":9771", "listen address")
	maxBatchFlag  = flag.Int("maxbatch", 15, "batch size limit (paper: 15)")
	timeScaleFlag = flag.Float64("timescale", 1, "multiply simulated GPU latencies (e.g. 0.1 for 10x faster)")
	statsFlag     = flag.Duration("stats", 5*time.Second, "stats print interval (0 disables)")
	delayFlag     = flag.Duration("delay", 0, "artificial extra delay per batch (emulates degradation)")
	delaysFlag    = flag.String("delays", "", `scripted degradation schedule, e.g. "30s:300ms,60s:0" (offset:extra-delay pairs)`)
	writeTOFlag   = flag.Duration("write-timeout", realnet.DefaultWriteTimeout, "per-response write deadline (negative disables)")
	drainFlag     = flag.Duration("drain", realnet.DefaultDrainTimeout, "how long to drain in-flight replies for a disconnected device (negative disables)")
	dropFlag      = flag.Bool("drop-on-disconnect", false, "drop in-flight replies for a disconnected device instead of draining")
	telemetryFlag = flag.String("telemetry-addr", "", "debug HTTP listen address for /metrics, /debug/vars, /debug/pprof/, /statusz (empty disables)")
	rejectLogFlag = flag.Int("reject-log-every", 0, "log the 1st and every Nth overflow rejection per tenant (0 disables rejection logging)")
	maxConnsFlag  = flag.Int("max-conns", 0, "accept guard: shed device connections beyond this with a fast close (0 = unlimited)")
	controlFlag   = flag.Bool("control", false, "expose fault-injection control endpoints (/control/slowdown, /control/delay) on the telemetry server; requires -telemetry-addr")
)

// controlHandlers registers the scenario daemon's actuation surface:
// POST /control/slowdown?factor=4 multiplies batch service times
// (the live gpu_stall), POST /control/delay?d=300ms sets the extra
// per-batch delay. Both accept their clearing values (factor=1, d=0).
func controlHandlers(mux *http.ServeMux, srv *realnet.Server, logger *log.Logger) {
	mux.HandleFunc("/control/slowdown", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		factor, err := strconv.ParseFloat(req.URL.Query().Get("factor"), 64)
		if err != nil || factor < 1 {
			http.Error(w, "need factor >= 1", http.StatusBadRequest)
			return
		}
		srv.SetSlowdown(factor)
		logger.Printf("control: slowdown factor -> %v", factor)
		fmt.Fprintf(w, "slowdown %v\n", factor)
	})
	mux.HandleFunc("/control/delay", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		arg := req.URL.Query().Get("d")
		var d time.Duration
		if arg != "0" && arg != "" {
			var err error
			if d, err = time.ParseDuration(arg); err != nil || d < 0 {
				http.Error(w, "need d >= 0 (duration)", http.StatusBadRequest)
				return
			}
		}
		srv.SetExtraDelay(d)
		logger.Printf("control: extra delay -> %v", d)
		fmt.Fprintf(w, "delay %v\n", d)
	})
}

// statuszHandler renders the human-readable server status page.
func statuszHandler(srv *realnet.Server, instr *realnet.ServerInstruments, start time.Time) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		st := srv.Stats()
		fmt.Fprintf(w, "ffserver — FrameFeedback inference server\n")
		fmt.Fprintf(w, "uptime:   %s\n", time.Since(start).Round(time.Second))
		fmt.Fprintf(w, "listen:   %v   maxbatch: %d   timescale: %v\n\n", srv.Addr(), *maxBatchFlag, *timeScaleFlag)
		fmt.Fprintf(w, "batcher:  submitted=%d completed=%d rejected=%d dropped=%d batches=%d\n",
			st.Submitted, st.Completed, st.Rejected, st.Dropped, st.Batches)
		fmt.Fprintf(w, "sessions: %d\n", instr.Sessions.Value())
		fmt.Fprintf(w, "writes:   timeouts=%d drops=%d\n", instr.WriteTimeouts.Value(), instr.WriteDrops.Value())
		fmt.Fprintf(w, "\nrejections by tenant:\n")
		any := false
		instr.Rejected.Each(func(tenant string, n uint64) {
			any = true
			fmt.Fprintf(w, "  tenant %-6s %d\n", tenant, n)
		})
		if !any {
			fmt.Fprintf(w, "  (none)\n")
		}
	}
}

// parseDelaySchedule parses "offset:delay" pairs, e.g.
// "30s:300ms,60s:0".
func parseDelaySchedule(s string) ([]struct{ At, Delay time.Duration }, error) {
	if s == "" {
		return nil, nil
	}
	var out []struct{ At, Delay time.Duration }
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad delay entry %q (want offset:delay)", part)
		}
		at, err := time.ParseDuration(kv[0])
		if err != nil {
			return nil, fmt.Errorf("bad offset in %q: %v", part, err)
		}
		var d time.Duration
		if kv[1] != "0" {
			d, err = time.ParseDuration(kv[1])
			if err != nil {
				return nil, fmt.Errorf("bad delay in %q: %v", part, err)
			}
		}
		out = append(out, struct{ At, Delay time.Duration }{at, d})
	}
	return out, nil
}

func main() {
	flag.Parse()
	logger := log.New(os.Stderr, "ffserver: ", log.LstdFlags)

	var instr *realnet.ServerInstruments
	var reg *telemetry.Registry
	if *telemetryFlag != "" {
		reg = telemetry.NewRegistry()
		instr = realnet.NewServerInstruments(reg)
	}

	srv, err := realnet.NewServer(realnet.ServerConfig{
		Addr:             *addrFlag,
		MaxBatch:         *maxBatchFlag,
		MaxConns:         *maxConnsFlag,
		TimeScale:        *timeScaleFlag,
		WriteTimeout:     *writeTOFlag,
		DrainTimeout:     *drainFlag,
		DropOnDisconnect: *dropFlag,
		Logger:           logger,
		Instruments:      instr,
		RejectLogEvery:   *rejectLogFlag,
	})
	if err != nil {
		logger.Fatal(err)
	}
	srv.SetExtraDelay(*delayFlag)
	logger.Printf("listening on %v (maxbatch=%d timescale=%v)", srv.Addr(), *maxBatchFlag, *timeScaleFlag)

	if reg != nil {
		mux := telemetry.NewMux(reg, statuszHandler(srv, instr, time.Now()))
		if *controlFlag {
			controlHandlers(mux, srv, logger)
		}
		debug, err := telemetry.Serve(*telemetryFlag, mux)
		if err != nil {
			logger.Fatal(err)
		}
		defer debug.Close()
		logger.Printf("telemetry on http://%s/ (/metrics /debug/vars /debug/pprof/ /statusz)", debug.Addr())
	} else if *controlFlag {
		logger.Fatal("-control requires -telemetry-addr")
	}

	schedule, err := parseDelaySchedule(*delaysFlag)
	if err != nil {
		logger.Fatal(err)
	}
	for _, entry := range schedule {
		entry := entry
		time.AfterFunc(entry.At, func() {
			logger.Printf("degradation schedule: extra delay -> %v", entry.Delay)
			srv.SetExtraDelay(entry.Delay)
		})
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	if *statsFlag > 0 {
		ticker := time.NewTicker(*statsFlag)
		defer ticker.Stop()
		go func() {
			var prevDone uint64
			for range ticker.C {
				st := srv.Stats()
				rate := float64(st.Completed-prevDone) / statsFlag.Seconds()
				prevDone = st.Completed
				fmt.Printf("submitted=%d completed=%d rejected=%d dropped=%d batches=%d throughput=%.1f/s\n",
					st.Submitted, st.Completed, st.Rejected, st.Dropped, st.Batches, rate)
			}
		}()
	}

	<-stop
	logger.Println("shutting down")
	if err := srv.Close(); err != nil {
		logger.Printf("close: %v", err)
	}
}

// Command ffdevice runs the real-TCP edge device: it streams synthetic
// frames to an ffserver instance and steers its offloading rate with
// the selected policy (FrameFeedback by default), printing a
// per-interval status line — P, Po, T — like the paper's live traces.
//
// Usage:
//
//	ffdevice -addr host:9771 [-policy framefeedback] [-fps 30] [-duration 60s]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/baselines"
	"repro/internal/controller"
	"repro/internal/realnet"
)

var (
	addrFlag      = flag.String("addr", "127.0.0.1:9771", "ffserver address")
	policyFlag    = flag.String("policy", "framefeedback", "policy: framefeedback, localonly, alwaysoffload")
	fpsFlag       = flag.Float64("fps", 30, "source frame rate F_s")
	deadlineFlag  = flag.Duration("deadline", 250*time.Millisecond, "end-to-end offload deadline")
	tickFlag      = flag.Duration("tick", time.Second, "controller measurement interval")
	durationFlag  = flag.Duration("duration", 0, "stop after this long (0 = run until interrupted)")
	streamFlag    = flag.Uint("stream", 1, "stream/tenant id")
	timeScaleFlag = flag.Float64("timescale", 1, "multiply simulated local-inference latency")
	csvFlag       = flag.String("csv", "", "append per-tick stats to this CSV file")
	recMinFlag    = flag.Duration("reconnect-min", realnet.DefaultReconnectMin, "initial reconnect backoff (negative disables reconnection)")
	recMaxFlag    = flag.Duration("reconnect-max", realnet.DefaultReconnectMax, "reconnect backoff cap")
)

func main() {
	flag.Parse()
	logger := log.New(os.Stderr, "ffdevice: ", log.LstdFlags)

	var policy controller.Policy
	switch strings.ToLower(*policyFlag) {
	case "framefeedback":
		policy = controller.NewFrameFeedback(controller.Config{})
	case "localonly":
		policy = baselines.LocalOnly{}
	case "alwaysoffload":
		policy = baselines.AlwaysOffload{}
	default:
		logger.Fatalf("unknown policy %q", *policyFlag)
	}

	client, err := realnet.Dial(realnet.ClientConfig{
		Addr:         *addrFlag,
		Stream:       uint32(*streamFlag),
		FS:           *fpsFlag,
		Deadline:     *deadlineFlag,
		Tick:         *tickFlag,
		Policy:       policy,
		TimeScale:    *timeScaleFlag,
		ReconnectMin: *recMinFlag,
		ReconnectMax: *recMaxFlag,
		Logger:       logger,
	})
	if err != nil {
		logger.Fatal(err)
	}
	defer client.Close()
	logger.Printf("streaming to %s at %.0f fps, policy %s", *addrFlag, *fpsFlag, policy.Name())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	var timeout <-chan time.Time
	if *durationFlag > 0 {
		timeout = time.After(*durationFlag)
	}

	var csvW *csv.Writer
	if *csvFlag != "" {
		f, err := os.Create(*csvFlag)
		if err != nil {
			logger.Fatal(err)
		}
		defer f.Close()
		csvW = csv.NewWriter(f)
		defer csvW.Flush()
		csvW.Write([]string{"t", "P", "Po", "T", "ok", "late", "rejected", "local"})
	}
	start := time.Now()

	ticker := time.NewTicker(*tickFlag)
	defer ticker.Stop()
	var prev realnet.ClientStats
	for {
		select {
		case <-ticker.C:
			cur := client.Stats()
			sec := tickFlag.Seconds()
			p := float64(cur.LocalDone-prev.LocalDone)/sec + float64(cur.OffloadOK-prev.OffloadOK)/sec
			timeouts := float64(cur.Timeouts()-prev.Timeouts()) / sec
			link := "up"
			if !client.Connected() {
				link = "DOWN"
			}
			fmt.Printf("P=%5.1f/s  Po=%5.1f  T=%4.1f/s  ok=%d  late=%d  rej=%d  local=%d  link=%s(re=%d)\n",
				p, cur.Po, timeouts, cur.OffloadOK, cur.OffloadTimedOut, cur.OffloadRejected, cur.LocalDone, link, cur.Reconnects)
			if csvW != nil {
				csvW.Write([]string{
					fmt.Sprintf("%.1f", time.Since(start).Seconds()),
					fmt.Sprintf("%.2f", p),
					fmt.Sprintf("%.2f", cur.Po),
					fmt.Sprintf("%.2f", timeouts),
					fmt.Sprintf("%d", cur.OffloadOK),
					fmt.Sprintf("%d", cur.OffloadTimedOut),
					fmt.Sprintf("%d", cur.OffloadRejected),
					fmt.Sprintf("%d", cur.LocalDone),
				})
				csvW.Flush()
			}
			prev = cur
		case <-stop:
			return
		case <-timeout:
			final := client.Stats()
			fmt.Printf("done: captured=%d offloaded=%d ok=%d timeouts=%d local=%d\n",
				final.Captured, final.OffloadAttempts, final.OffloadOK, final.Timeouts(), final.LocalDone)
			return
		}
	}
}

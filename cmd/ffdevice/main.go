// Command ffdevice runs the real-TCP edge device: it streams synthetic
// frames to an ffserver instance and steers its offloading rate with
// the selected policy (FrameFeedback by default), printing a
// per-interval status line — P, Po, T — like the paper's live traces.
//
// Usage:
//
//	ffdevice -addr host:9771 [-policy framefeedback] [-fps 30] [-duration 60s]
//
// With -telemetry-addr set, a debug HTTP server exposes /metrics
// (Prometheus), /debug/vars (expvar JSON), /debug/pprof/ and a
// human-readable /statusz with the controller's live internals.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/baselines"
	"repro/internal/controller"
	"repro/internal/realnet"
	"repro/internal/telemetry"
)

var (
	addrFlag      = flag.String("addr", "127.0.0.1:9771", "ffserver address")
	policyFlag    = flag.String("policy", "framefeedback", "policy: framefeedback, localonly, alwaysoffload")
	fpsFlag       = flag.Float64("fps", 30, "source frame rate F_s")
	deadlineFlag  = flag.Duration("deadline", 250*time.Millisecond, "end-to-end offload deadline")
	tickFlag      = flag.Duration("tick", time.Second, "controller measurement interval")
	durationFlag  = flag.Duration("duration", 0, "stop after this long (0 = run until interrupted)")
	streamFlag    = flag.Uint("stream", 1, "stream/tenant id")
	timeScaleFlag = flag.Float64("timescale", 1, "multiply simulated local-inference latency")
	csvFlag       = flag.String("csv", "", "append per-tick stats to this CSV file")
	recMinFlag    = flag.Duration("reconnect-min", realnet.DefaultReconnectMin, "initial reconnect backoff (negative disables reconnection)")
	recMaxFlag    = flag.Duration("reconnect-max", realnet.DefaultReconnectMax, "reconnect backoff cap")
	recBudgetFlag = flag.Int("reconnect-budget", 0, "give up after this many consecutive failed redials and exit non-zero (0 = retry forever)")
	telemetryFlag = flag.String("telemetry-addr", "", "debug HTTP listen address for /metrics, /debug/vars, /debug/pprof/, /statusz (empty disables)")
)

// controllerGauges mirrors each FrameFeedback snapshot into telemetry
// series so the feedback loop itself is scrapeable.
func controllerGauges(reg *telemetry.Registry, ff *controller.FrameFeedback) {
	errG := reg.FloatGauge("framefeedback_controller_error",
		"Piecewise Eq. 5 error e of the last control tick.")
	updG := reg.FloatGauge("framefeedback_controller_update",
		"Applied (clamped) P_o correction u of the last control tick.")
	pG := reg.FloatGauge("framefeedback_controller_p_term",
		"Unclamped proportional contribution K_P*e of the last tick.")
	dG := reg.FloatGauge("framefeedback_controller_d_term",
		"Unclamped derivative contribution K_D*de/dt of the last tick.")
	tAvgG := reg.FloatGauge("framefeedback_controller_t_avg",
		"Window-averaged timeout rate the error was computed from.")
	regimeG := reg.Gauge("framefeedback_controller_regime",
		"Active Eq. 5 branch: 0 push-up (T=0), 1 steer (T>0).")
	eqG := reg.Gauge("framefeedback_controller_equilibrium",
		"1 while the controller sits at the standing-probe fixed point T = 0.1*F_s (5% band).")
	clampedC := reg.Counter("framefeedback_controller_clamped_total",
		"Control ticks whose update hit the asymmetric Table IV clamp.")
	ff.AddObserver(func(s controller.Snapshot) {
		errG.Set(s.Err)
		updG.Set(s.Update)
		pG.Set(s.PTerm)
		dG.Set(s.DTerm)
		tAvgG.Set(s.TAvg)
		regimeG.SetBool(s.Regime == controller.RegimeSteer)
		eqG.SetBool(s.AtEquilibrium(0.05))
		if s.Clamped {
			clampedC.Inc()
		}
	})
}

// statuszHandler renders the human-readable status page. client is
// loaded from an atomic pointer because the telemetry server starts
// before Dial returns.
func statuszHandler(client *atomic.Pointer[realnet.Client], ff *controller.FrameFeedback, policyName string, start time.Time) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "ffdevice — FrameFeedback edge device\n")
		fmt.Fprintf(w, "uptime:   %s\n", time.Since(start).Round(time.Second))
		fmt.Fprintf(w, "policy:   %s\n", policyName)
		fmt.Fprintf(w, "fps:      %.1f   deadline: %s   tick: %s\n\n", *fpsFlag, *deadlineFlag, *tickFlag)
		c := client.Load()
		if c == nil {
			fmt.Fprintf(w, "client: not connected yet\n")
			return
		}
		st := c.Stats()
		link := "up"
		if !c.Connected() {
			link = "DOWN"
		}
		fmt.Fprintf(w, "link:     %s (reconnects=%d disconnects=%d)\n", link, st.Reconnects, st.Disconnects)
		fmt.Fprintf(w, "P_o:      %.2f frames/s\n", st.Po)
		fmt.Fprintf(w, "counters: captured=%d ok=%d late=%d rejected=%d local=%d dropped=%d\n",
			st.Captured, st.OffloadOK, st.OffloadTimedOut, st.OffloadRejected, st.LocalDone, st.LocalDropped)
		if ff == nil {
			return
		}
		s, ok := ff.LastSnapshot()
		if !ok {
			fmt.Fprintf(w, "controller: no tick yet\n")
			return
		}
		target := ff.Config().TimeoutFrac * s.FS
		fmt.Fprintf(w, "\ncontroller (last tick):\n")
		fmt.Fprintf(w, "  T:       %.2f/s (avg %.2f, standing-probe target %.2f = %.2g*F_s)\n",
			s.T, s.TAvg, target, ff.Config().TimeoutFrac)
		fmt.Fprintf(w, "  regime:  %s   e=%.3f   u=%.3f (P=%.3f D=%.3f clamped=%v)\n",
			s.Regime, s.Err, s.Update, s.PTerm, s.DTerm, s.Clamped)
		switch {
		case s.AtEquilibrium(0.05):
			fmt.Fprintf(w, "  state:   EQUILIBRIUM — T settled at the %.2g*F_s standing probe\n", ff.Config().TimeoutFrac)
		case s.Regime == controller.RegimePushUp && s.Err <= 0.05*s.FS:
			fmt.Fprintf(w, "  state:   CONVERGED — offloading near F_s with no timeouts\n")
		default:
			fmt.Fprintf(w, "  state:   adjusting\n")
		}
	}
}

func main() {
	flag.Parse()
	logger := log.New(os.Stderr, "ffdevice: ", log.LstdFlags)

	var policy controller.Policy
	switch strings.ToLower(*policyFlag) {
	case "framefeedback":
		policy = controller.NewFrameFeedback(controller.Config{})
	case "localonly":
		policy = baselines.LocalOnly{}
	case "alwaysoffload":
		policy = baselines.AlwaysOffload{}
	default:
		logger.Fatalf("unknown policy %q", *policyFlag)
	}
	ff, _ := policy.(*controller.FrameFeedback)

	var instr *realnet.ClientInstruments
	var clientPtr atomic.Pointer[realnet.Client]
	if *telemetryFlag != "" {
		reg := telemetry.NewRegistry()
		instr = realnet.NewClientInstruments(reg)
		if ff != nil {
			controllerGauges(reg, ff)
		}
		debug, err := telemetry.Serve(*telemetryFlag,
			telemetry.NewMux(reg, statuszHandler(&clientPtr, ff, *policyFlag, time.Now())))
		if err != nil {
			logger.Fatal(err)
		}
		defer debug.Close()
		logger.Printf("telemetry on http://%s/ (/metrics /debug/vars /debug/pprof/ /statusz)", debug.Addr())
	}

	client, err := realnet.Dial(realnet.ClientConfig{
		Addr:            *addrFlag,
		Stream:          uint32(*streamFlag),
		FS:              *fpsFlag,
		Deadline:        *deadlineFlag,
		Tick:            *tickFlag,
		Policy:          policy,
		TimeScale:       *timeScaleFlag,
		ReconnectMin:    *recMinFlag,
		ReconnectMax:    *recMaxFlag,
		ReconnectBudget: *recBudgetFlag,
		Logger:          logger,
		Instruments:     instr,
	})
	if err != nil {
		logger.Fatal(err)
	}
	defer client.Close()
	clientPtr.Store(client)
	logger.Printf("streaming to %s at %.0f fps, policy %s", *addrFlag, *fpsFlag, policy.Name())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	var timeout <-chan time.Time
	if *durationFlag > 0 {
		timeout = time.After(*durationFlag)
	}

	var csvW *csv.Writer
	if *csvFlag != "" {
		f, err := os.Create(*csvFlag)
		if err != nil {
			logger.Fatal(err)
		}
		defer f.Close()
		csvW = csv.NewWriter(f)
		defer csvW.Flush()
		csvW.Write([]string{"t", "P", "Po", "T", "ok", "late", "rejected", "local"})
	}
	start := time.Now()

	ticker := time.NewTicker(*tickFlag)
	defer ticker.Stop()
	var prev realnet.ClientStats
	for {
		select {
		case <-ticker.C:
			cur := client.Stats()
			sec := tickFlag.Seconds()
			p := float64(cur.LocalDone-prev.LocalDone)/sec + float64(cur.OffloadOK-prev.OffloadOK)/sec
			timeouts := float64(cur.Timeouts()-prev.Timeouts()) / sec
			link := "up"
			if !client.Connected() {
				link = "DOWN"
			}
			fmt.Printf("P=%5.1f/s  Po=%5.1f  T=%4.1f/s  ok=%d  late=%d  rej=%d  local=%d  link=%s(re=%d)\n",
				p, cur.Po, timeouts, cur.OffloadOK, cur.OffloadTimedOut, cur.OffloadRejected, cur.LocalDone, link, cur.Reconnects)
			if csvW != nil {
				csvW.Write([]string{
					fmt.Sprintf("%.1f", time.Since(start).Seconds()),
					fmt.Sprintf("%.2f", p),
					fmt.Sprintf("%.2f", cur.Po),
					fmt.Sprintf("%.2f", timeouts),
					fmt.Sprintf("%d", cur.OffloadOK),
					fmt.Sprintf("%d", cur.OffloadTimedOut),
					fmt.Sprintf("%d", cur.OffloadRejected),
					fmt.Sprintf("%d", cur.LocalDone),
				})
				csvW.Flush()
			}
			prev = cur
		case <-stop:
			return
		case <-client.Terminated():
			// The reconnect budget ran out: a permanently dead server
			// is a hard failure, not an endless silent retry.
			logger.Printf("giving up: %v", client.TerminalErr())
			client.Close()
			os.Exit(1)
		case <-timeout:
			final := client.Stats()
			fmt.Printf("done: captured=%d offloaded=%d ok=%d timeouts=%d local=%d\n",
				final.Captured, final.OffloadAttempts, final.OffloadOK, final.Timeouts(), final.LocalDone)
			return
		}
	}
}

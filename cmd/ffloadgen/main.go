// Command ffloadgen drives a fleet of virtual FrameFeedback devices —
// each a real closed-loop controller with its own capture, local
// inference, and deadline accounting — multiplexed over a small pool
// of TCP connections to one ffserver (or a fault proxy in front of
// it). It is the load half of the soak rig; pair it with ffscenariod.
//
// Usage:
//
//	ffloadgen -addr host:9771 -devices 1000 [-conns 8] [-duration 5m]
//
// With -telemetry-addr set, a debug HTTP server exposes /metrics
// (Prometheus), /debug/vars (expvar JSON), /debug/pprof/ and a
// human-readable /statusz with the fleet's convergence state. The
// scenario daemon polls framefeedback_loadgen_settled_ratio there.
//
// On exit the final fleet snapshot is printed as one JSON line; with
// -min-settled-ratio set, ffloadgen exits non-zero when the fleet
// ends below it — a machine-readable convergence verdict.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/loadgen"
	"repro/internal/telemetry"
)

var (
	addrFlag      = flag.String("addr", "127.0.0.1:9771", "ffserver (or fault-proxy) address")
	devicesFlag   = flag.Int("devices", 1000, "virtual device count")
	connsFlag     = flag.Int("conns", 8, "shared TCP connection pool size")
	workersFlag   = flag.Int("workers", 0, "stepping goroutines (0 = GOMAXPROCS)")
	fpsFlag       = flag.Float64("fps", 30, "per-device source frame rate F_s")
	deadlineFlag  = flag.Duration("deadline", 250*time.Millisecond, "end-to-end offload deadline")
	tickFlag      = flag.Duration("tick", time.Second, "controller measurement interval")
	stepFlag      = flag.Duration("step", 20*time.Millisecond, "engine stepping interval")
	timeScaleFlag = flag.Float64("timescale", 1, "multiply simulated local latency (match the server)")
	payloadFlag   = flag.Int("payload", 0, "per-frame upload bytes (0 = the evaluation's ~29 KB)")
	seedFlag      = flag.Uint64("seed", 1, "fleet rng seed")
	initialPoFlag = flag.Float64("initial-po", 0, "starting offload rate per device (0 = policy default)")
	durationFlag  = flag.Duration("duration", 0, "stop after this long (0 = run until interrupted)")
	reportFlag    = flag.Duration("report", 5*time.Second, "fleet status print interval (0 disables)")
	minSettledF   = flag.Float64("min-settled-ratio", 0, "exit non-zero unless the final settled ratio reaches this (0 disables the verdict)")
	telemetryFlag = flag.String("telemetry-addr", "", "debug HTTP listen address for /metrics, /debug/vars, /debug/pprof/, /statusz (empty disables)")
)

// statuszHandler renders the human-readable fleet status page.
func statuszHandler(e *loadgen.Engine, start time.Time) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s := e.Snapshot()
		fmt.Fprintf(w, "ffloadgen — FrameFeedback virtual-device fleet\n")
		fmt.Fprintf(w, "uptime:   %s\n", time.Since(start).Round(time.Second))
		fmt.Fprintf(w, "target:   %s   devices: %d   conns up: %d\n\n", *addrFlag, s.Devices, e.ConnsUp())
		fmt.Fprintf(w, "settled:  %d/%d (%.1f%%)\n", s.Settled, s.Devices, 100*s.SettledRatio)
		fmt.Fprintf(w, "P_o:      mean %.2f  min %.2f  max %.2f frames/s\n", s.PoMean, s.PoMin, s.PoMax)
		fmt.Fprintf(w, "T:        mean %.2f frames/s (EWMA)\n\n", s.TMean)
		fmt.Fprintf(w, "counters: captured=%d attempts=%d ok=%d late=%d rej=%d local=%d dropped=%d senderr=%d\n",
			s.Captured, s.OffloadAttempts, s.OffloadOK, s.OffloadTimedOut,
			s.OffloadRejected, s.LocalDone, s.LocalDropped, s.SendErrors)
	}
}

func main() {
	flag.Parse()
	logger := log.New(os.Stderr, "ffloadgen: ", log.LstdFlags)

	var instr *loadgen.Instruments
	var reg *telemetry.Registry
	if *telemetryFlag != "" {
		reg = telemetry.NewRegistry()
		instr = loadgen.NewInstruments(reg)
	}

	e, err := loadgen.New(loadgen.Config{
		Addr:         *addrFlag,
		Devices:      *devicesFlag,
		Conns:        *connsFlag,
		Workers:      *workersFlag,
		FS:           *fpsFlag,
		Deadline:     *deadlineFlag,
		Tick:         *tickFlag,
		Step:         *stepFlag,
		TimeScale:    *timeScaleFlag,
		PayloadBytes: *payloadFlag,
		Seed:         *seedFlag,
		InitialPo:    *initialPoFlag,
		Instruments:  instr,
		Logger:       logger,
	})
	if err != nil {
		logger.Fatal(err)
	}
	defer e.Close()
	logger.Printf("fleet of %d devices -> %s over %d conns", *devicesFlag, *addrFlag, *connsFlag)

	if reg != nil {
		debug, err := telemetry.Serve(*telemetryFlag,
			telemetry.NewMux(reg, statuszHandler(e, time.Now())))
		if err != nil {
			logger.Fatal(err)
		}
		defer debug.Close()
		logger.Printf("telemetry on http://%s/ (/metrics /debug/vars /debug/pprof/ /statusz)", debug.Addr())
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	var timeout <-chan time.Time
	if *durationFlag > 0 {
		timeout = time.After(*durationFlag)
	}
	var report <-chan time.Time
	if *reportFlag > 0 {
		t := time.NewTicker(*reportFlag)
		defer t.Stop()
		report = t.C
	}

	for {
		select {
		case <-report:
			s := e.Snapshot()
			fmt.Printf("settled=%d/%d (%.0f%%)  Po mean=%.1f [%.1f..%.1f]  T=%.2f/s  ok=%d late=%d rej=%d conns=%d\n",
				s.Settled, s.Devices, 100*s.SettledRatio, s.PoMean, s.PoMin, s.PoMax,
				s.TMean, s.OffloadOK, s.OffloadTimedOut, s.OffloadRejected, e.ConnsUp())
			continue
		case <-stop:
			logger.Println("interrupted")
		case <-timeout:
		}
		break
	}

	final := e.Snapshot()
	e.Close()
	out, _ := json.Marshal(final)
	fmt.Printf("%s\n", out)
	if *minSettledF > 0 && final.SettledRatio < *minSettledF {
		logger.Printf("VERDICT: FAIL — settled ratio %.2f < %.2f", final.SettledRatio, *minSettledF)
		os.Exit(1)
	}
	if *minSettledF > 0 {
		logger.Printf("VERDICT: PASS — settled ratio %.2f >= %.2f", final.SettledRatio, *minSettledF)
	}
}

package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/controller"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/parfan"
	"repro/internal/plot"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/simtime"
	"repro/internal/telemetry"
)

// Fault experiments (opt-in, not part of -exp all): recovery measures
// time-to-reconvergence after each fault kind clears; chaos replays
// seeded random fault plans under the run-time invariant checker.

// recoveryFS is the recovery run's source frame rate; the equilibrium
// band below is expressed in fractions of it.
const recoveryFS = 30.0

// recoveryPlan is the scripted fault sequence for -exp recovery: one
// fault of each substrate kind, spaced so the controller fully settles
// between them.
func recoveryPlan() faults.Plan {
	return faults.Plan{
		// Long enough for the controller to ride the backoff
		// transient down and settle at the standing-probe equilibrium
		// before the restore.
		{Kind: faults.ServerCrash, At: 30 * time.Second, Duration: 25 * time.Second},
		{Kind: faults.LinkPartition, At: 80 * time.Second, Duration: 10 * time.Second, Device: -1},
		{Kind: faults.GPUStall, At: 115 * time.Second, Duration: 10 * time.Second, Factor: 50},
	}
}

// reconvergence returns how many seconds after clearSec the Po trace
// first returns to at least frac of its pre-fault baseline, or -1 if
// it never does. Trace index i holds the measurement taken at
// t = i+1 s, covering the interval (i, i+1].
func reconvergence(po []float64, baseline float64, clearSec int, frac float64) float64 {
	for i := clearSec; i < len(po); i++ {
		if po[i] >= frac*baseline {
			return float64(i+1) - float64(clearSec)
		}
	}
	return -1
}

// recovery is the closed-loop fault-recovery experiment: a single
// FrameFeedback device rides through a server crash, a link partition
// and a GPU stall, and the experiment reports how long P_o takes to
// reconverge after each fault clears. During the total server outage
// the controller must settle at its standing probe rate — the
// TimeoutFrac·F_s equilibrium of Eq. 5 — which is asserted as a band
// around 0.1·F_s.
func recovery() {
	header("Fault recovery: reconvergence after crash / partition / GPU stall")
	reg := telemetry.NewRegistry()
	faults.RegisterMetrics(reg)

	plan := recoveryPlan()
	r := scenario.Run(withSeed(scenario.Config{
		Policy:          scenario.FrameFeedbackFactory(controller.Config{}),
		FS:              recoveryFS,
		FrameLimit:      4500, // 150 s at 30 fps
		Devices:         []scenario.DeviceSpec{{Profile: models.Pi4B14()}},
		Faults:          plan,
		CheckInvariants: true,
	}))

	// Annotate the trace with fault activity so the CSV is
	// self-describing.
	active := make([]float64, len(r.Time))
	for i := range active {
		at := simtime.Time(r.Time[i]+1) * simtime.Time(time.Second)
		for _, in := range plan {
			if at > in.At && at <= in.End() {
				active[i] = float64(in.Kind) + 1
			}
		}
	}
	csv := r.Table().AddColumn("faultKind", active)
	writeCSV("recovery.csv", csv)

	rows := [][]string{}
	for _, in := range plan {
		startSec := int(in.At / simtime.Time(time.Second))
		clearSec := int(in.End() / simtime.Time(time.Second))
		baseline := metrics.Mean(r.Po[startSec-5 : startSec])
		during := metrics.Mean(r.Po[startSec+1 : clearSec])
		rec := reconvergence(r.Po, baseline, clearSec, 0.9)
		faults.ObserveRecovery(rec)
		recStr := "never"
		if rec >= 0 {
			recStr = fmt.Sprintf("%.0f s", rec)
		}
		rows = append(rows, []string{
			in.String(),
			fmt.Sprintf("%5.2f", baseline),
			fmt.Sprintf("%5.2f", during),
			recStr,
			pass(rec >= 0),
		})
	}
	plot.RenderTable(os.Stdout,
		[]string{"fault", "Po before", "Po during", "reconvergence", "verdict"}, rows)

	// Equilibrium check: with the server gone, every offload times out
	// and FrameFeedback's error term e = TimeoutFrac·F_s − T̄ drives Po
	// down until the timeout rate settles at the standing probe rate
	// ≈ 0.1·F_s. The first seconds of the outage are the backoff
	// transient, so the band is asserted over the settled tail (the
	// last 10 ticks before the restore), with the whole-outage mean
	// printed for context.
	crash := plan[0]
	lo, hi := 0.05*recoveryFS, 0.15*recoveryFS
	crashStart := int(crash.At / simtime.Time(time.Second))
	crashEnd := int(crash.End() / simtime.Time(time.Second))
	wholeT := metrics.Mean(r.TRate[crashStart:crashEnd])
	settledT := metrics.Mean(r.TRate[crashEnd-10 : crashEnd])
	fmt.Printf("\nT during server outage: %.2f/s whole window, %.2f/s settled tail\n", wholeT, settledT)
	fmt.Printf("settled T inside equilibrium band [%.1f, %.1f] around 0.1*F_s: %s\n",
		lo, hi, pass(settledT >= lo && settledT <= hi))
	fmt.Printf("faults injected: %d; invariant checker: %s\n",
		r.FaultsInjected, pass(r.FaultsInjected == uint64(len(plan))))

	if *verboseFlag {
		fmt.Println("\ntelemetry exposition (fault instruments):")
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}
}

// chaosPlans derives n seeded random fault plans for -exp chaos. Plan i
// is a pure function of baseSeed+i, so a failing plan can be replayed
// in isolation.
func chaosPlans(baseSeed uint64, n, horizonSec, devices int) []faults.Plan {
	plans := make([]faults.Plan, n)
	for i := range plans {
		plans[i] = faults.RandomPlan(rng.New(baseSeed+uint64(i)), faults.RandomPlanConfig{
			Horizon: simtime.Time(horizonSec) * simtime.Time(time.Second),
			Devices: devices,
		})
	}
	return plans
}

// chaosPlanCount is how many random plans -exp chaos replays; CI's
// chaos-smoke job runs the same count under the race detector.
const chaosPlanCount = 8

// chaos replays seeded random fault plans with the invariant checker
// armed: every run validates frame conservation, pool-generation
// sanity and crash semantics each tick, and panics on the first
// violation with its seed and sim time. Each plan also runs across two
// seeds via Replicate, so the check covers the parallel fan-out path.
func chaos() {
	header("Chaos: random fault plans under the run-time invariant checker")
	plans := chaosPlans(*seedFlag, chaosPlanCount, 40, 3)
	type outcome struct {
		kinds string
		rep   *scenario.Replication
	}
	outcomes := parfan.Map(workers(), plans, func(i int, plan faults.Plan) outcome {
		kinds := ""
		for j, in := range plan {
			if j > 0 {
				kinds += " "
			}
			kinds += in.Kind.String()
		}
		cfg := scenario.Config{
			Policy:          scenario.FrameFeedbackFactory(controller.Config{}),
			FrameLimit:      1200, // 40 s at 30 fps
			Faults:          plan,
			CheckInvariants: true,
		}
		return outcome{kinds: kinds, rep: scenario.Replicate(cfg, *seedFlag+uint64(i)*100, 2)}
	})
	rows := [][]string{}
	for i, o := range outcomes {
		injected := uint64(0)
		for _, r := range o.rep.Results {
			injected += r.FaultsInjected
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", i),
			o.kinds,
			fmt.Sprintf("%d", injected),
			fmt.Sprintf("%5.2f", o.rep.MeanPSummary.Mean),
			fmt.Sprintf("%5.2f", o.rep.MeanTSummary.Mean),
		})
	}
	plot.RenderTable(os.Stdout,
		[]string{"plan", "fault kinds", "injected", "mean P", "mean T"}, rows)
	fmt.Printf("\n%d plans x 2 seeds: all invariants held (any violation panics with seed and sim time)\n",
		len(plans))
}

package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/parfan"
	"repro/internal/plot"
	"repro/internal/scenario"
	"repro/internal/spans"
)

var traceOutFlag = flag.String("trace-out", "",
	"write frame-lifecycle spans to this file — Chrome trace-event JSON (load in Perfetto) by default, span JSONL with a .jsonl suffix; honored by -exp tracepath (FrameFeedback run) and -exp cluster")

// tracepath is the critical-path experiment (opt-in, not part of -exp
// all): every policy runs the Table V schedule with the span tracer
// attached, and the output is each policy's latency budget split by
// lifecycle stage — where the 250 ms deadline actually goes (uplink vs
// server queue vs batch vs downlink) — plus a consistency check that
// the per-stage durations tile each successful offload's end-to-end
// latency exactly.
func tracepath() {
	header("Critical path: per-stage latency budget over the Table V schedule")

	names := scenario.PolicyOrder()
	tracers := parfan.Map(workers(), names, func(_ int, name string) *spans.Tracer {
		tr := spans.New(spans.Options{KeepAll: true, Ring: -1})
		cfg := withSeed(scenario.NetworkExperiment(scenario.AllPolicies()[name]))
		cfg.Trace = tr
		scenario.Run(cfg)
		return tr
	})

	for i, name := range names {
		tr := tracers[i]
		recs := tr.Records()
		fmt.Printf("\n%s — %d spans (%d still in flight at end):\n",
			name, tr.Completed(), len(tr.InFlight()))
		rows := [][]string{}
		for _, st := range spans.Breakdown(recs) {
			rows = append(rows, []string{
				st.Kind.String(),
				fmt.Sprintf("%d", st.Count),
				fmt.Sprintf("%7.1f", st.P50.Seconds()*1e3),
				fmt.Sprintf("%7.1f", st.P99.Seconds()*1e3),
				fmt.Sprintf("%7.1f", st.Mean.Seconds()*1e3),
			})
		}
		plot.RenderTable(os.Stdout,
			[]string{"stage", "count", "p50 ms", "p99 ms", "mean ms"}, rows)
	}

	// Contiguity: each transfer stage's end instant is the next stage's
	// start instant, so summed stage durations must reproduce every
	// successful offload's end-to-end latency exactly.
	okN, exact := 0, 0
	for i := range names {
		for _, rec := range tracers[i].Records() {
			if rec.Status != spans.VerdictOK {
				continue
			}
			okN++
			if rec.CriticalPathSum() == rec.Latency() {
				exact++
			}
		}
	}
	fmt.Printf("\nstage sums vs end-to-end latency: %d/%d exact (%s)\n",
		exact, okN, pass(okN > 0 && exact == okN))

	if *traceOutFlag != "" {
		// Export the protagonist's run; the other policies' tracers
		// only feed the tables above.
		writeTraceOut(tracers[0], names[0])
	}
}

// writeTraceOut serializes a tracer to the -trace-out path: Chrome
// trace-event JSON by default, span JSONL for a .jsonl suffix.
func writeTraceOut(tr *spans.Tracer, scenarioName string) {
	f, err := os.Create(*traceOutFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	defer f.Close()
	if strings.HasSuffix(*traceOutFlag, ".jsonl") {
		err = tr.WriteJSONL(f, spans.Meta{Seed: *seedFlag, Scenario: scenarioName})
	} else {
		err = tr.WriteChromeTrace(f)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	fmt.Printf("lifecycle trace (%d spans) written to %s\n", tr.Completed(), *traceOutFlag)
}

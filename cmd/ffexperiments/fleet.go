package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/metrics"
	"repro/internal/plot"
	"repro/internal/scenario"
)

// Fleet experiment (opt-in, not part of -exp all): the aggregate view
// the paper never shows — what the Po/T distribution looks like across
// tens of thousands of independent FrameFeedback controllers sharing
// one server, run on the sharded fleet engine. Shard and worker counts
// change only wall-clock time; the reported state hash is identical
// for every layout and every rerun.

var (
	fleetDevicesFlag = flag.Int("fleet-devices", 10000, "fleet experiment: number of devices")
	fleetShardsFlag  = flag.Int("fleet-shards", 0, "fleet experiment: event-heap shards (0 = GOMAXPROCS)")
	fleetWorkersFlag = flag.Int("fleet-workers", 0, "fleet experiment: shard-executing goroutines (0 = shards)")
	fleetSecondsFlag = flag.Int("fleet-seconds", 0, "fleet experiment: simulated seconds (0 = default schedule length)")
)

func fleet() {
	shards := *fleetShardsFlag
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	cfg := scenario.FleetConfig{
		Seed:    *seedFlag,
		Devices: *fleetDevicesFlag,
		Shards:  shards,
		Workers: *fleetWorkersFlag,
	}
	if *fleetSecondsFlag > 0 {
		cfg.Duration = time.Duration(*fleetSecondsFlag) * time.Second
	}
	header(fmt.Sprintf("Fleet: %d FrameFeedback devices, one shared server, %d shards",
		cfg.Devices, shards))

	start := time.Now()
	f := scenario.NewFleet(cfg)
	for f.StepTick() {
	}
	r := f.Finish()
	wall := time.Since(start)

	plot.RenderTable(os.Stdout,
		[]string{"metric", "mean", "p50", "p99"},
		[][]string{
			{"final Po (frames/s)",
				fmt.Sprintf("%.3f", r.PoMean), fmt.Sprintf("%.3f", r.PoP50), fmt.Sprintf("%.3f", r.PoP99)},
			{"timeout rate T (frames/s)",
				fmt.Sprintf("%.3f", r.TMean), fmt.Sprintf("%.3f", r.TP50), fmt.Sprintf("%.3f", r.TP99)},
		})
	fmt.Printf("\ncaptured %d, offload attempts %d, ok %d, timed out %d, rejected %d\n",
		r.Captured, r.OffloadAttempts, r.OffloadOK, r.OffloadTimedOut, r.OffloadRejected)
	fmt.Printf("local done %d, local dropped %d; server completed %d of %d submitted\n",
		r.LocalDone, r.LocalDropped, r.Server.Completed, r.Server.Submitted)
	fmt.Printf("per-tenant Jain index: %.4f\n", r.JainTenants)
	checkStr := "off"
	if scenario.InvariantChecking() || cfg.CheckInvariants {
		checkStr = "armed, clean"
		if r.InvariantErr != nil {
			checkStr = "VIOLATED: " + r.InvariantErr.Error()
		}
	}
	fmt.Printf("invariant checker: %s\n", checkStr)
	fmt.Printf("events fired: %d (%.0f events/s wall); %.0f devices/s\n",
		r.Events, float64(r.Events)/wall.Seconds(), float64(r.Devices)/wall.Seconds())
	fmt.Printf("state hash: %#016x (byte-identical across shard counts, worker counts and reruns)\n",
		r.StateHash)

	writeCSV("fleet.csv", metrics.NewTable().
		AddColumn("t", f.HistTime).
		AddColumn("Po_mean", f.HistPoMean).
		AddColumn("T_mean", f.HistTRate))
}

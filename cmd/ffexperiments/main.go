// Command ffexperiments regenerates every table and figure from the
// FrameFeedback paper on the simulated substrate, printing ASCII
// renditions and optionally writing CSV traces.
//
// Usage:
//
//	ffexperiments [-exp NAME] [-out DIR] [-seed N] [-parallel N] [-verbose] [-invariants]
//
// where NAME is all (default) or one of: table2 table3 fig2 fig3 fig4
// cpu factor ablations energy combined burst quality fairness tune
// latency deadline heterofair robustness aimd admitcap app sweep
// batchsweep ticksweep delaysweep — plus four opt-in experiments that
// are not part of "all": the wall-clock "real" (E20), the
// fault-injection pair "recovery" (time-to-reconvergence after each
// fault kind clears) and "chaos" (seeded random fault plans under the
// run-time invariant checker), "cluster" (kill 1 of 8 pool members,
// fleet reconvergence + per-tenant fairness), and "tracepath" (span
// tracing over the Table V schedule: each policy's latency budget split
// by lifecycle stage; -trace-out exports the spans for Perfetto). The
// experiment ids match DESIGN.md's per-experiment index (E1–E24).
//
// -invariants forces the run-time invariant checker on for every
// simulation in the process (recovery and chaos always run with it).
//
// Independent simulations inside an experiment (policy comparisons,
// replications, parameter sweeps) fan out across -parallel workers
// (default: GOMAXPROCS). Output is byte-identical at any worker count:
// every run owns its scheduler and rng streams, and results are
// assembled in input order. -verbose appends a
// framefeedback_sim_events_fired_total line per experiment so
// speedups can be attributed to event throughput vs. fan-out.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/app"
	"repro/internal/baselines"
	"repro/internal/controller"
	"repro/internal/device"
	"repro/internal/frame"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/parfan"
	"repro/internal/plot"
	"repro/internal/realnet"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/server"
	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/workload"
)

var (
	expFlag      = flag.String("exp", "all", "experiment to run (see command doc for the list)")
	outFlag      = flag.String("out", "", "directory for CSV traces (omit to skip CSV output)")
	seedFlag     = flag.Uint64("seed", scenario.DefaultSeed, "simulation seed")
	parallelFlag = flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS, 1 = sequential)")
	verboseFlag    = flag.Bool("verbose", false, "print per-experiment event-throughput accounting")
	invariantsFlag = flag.Bool("invariants", false, "run every simulation under the run-time invariant checker")
)

// workers returns the fan-out bound for this process's sweeps.
func workers() int { return scenario.Parallelism() }

func main() {
	flag.Parse()
	scenario.SetParallelism(*parallelFlag)
	scenario.SetInvariantChecking(*invariantsFlag)
	runners := map[string]func(){
		"table2":     table2,
		"table3":     table3,
		"fig2":       fig2,
		"fig3":       fig3,
		"fig4":       fig4,
		"cpu":        cpu,
		"factor":     factor,
		"ablations":  ablations,
		"energy":     energy,
		"combined":   combined,
		"burst":      burst,
		"quality":    qualityExp,
		"fairness":   fairness,
		"tune":       tune,
		"latency":    latency,
		"deadline":   deadline,
		"heterofair": heterofair,
		"robustness": robustness,
		"aimd":       aimd,
		"admitcap":   admitcap,
		"app":        application,
		"sweep":      sweep,
		"real":       realExp,
		"batchsweep": batchsweep,
		"ticksweep":  ticksweep,
		"delaysweep": delaysweep,
		"recovery":   recovery,
		"chaos":      chaos,
		"cluster":    clusterExp,
		"tracepath":  tracepath,
		"fleet":      fleet,
	}
	// recovery and chaos stay out of the "all" order: -exp all output
	// is a byte-stability fixture, and the fault experiments are
	// opt-in diagnostics like "real".
	order := []string{
		"table2", "table3", "fig2", "fig3", "fig4", "cpu", "factor", "ablations",
		"energy", "combined", "burst", "quality", "fairness", "tune",
		"latency", "deadline", "heterofair", "robustness", "aimd", "admitcap", "app", "sweep",
		"batchsweep", "ticksweep", "delaysweep",
	}
	if *expFlag == "all" {
		for _, name := range order {
			runExperiment(name, runners[name])
		}
		return
	}
	run, ok := runners[*expFlag]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; want one of: all %s\n", *expFlag, strings.Join(order, " "))
		os.Exit(2)
	}
	runExperiment(*expFlag, run)
}

// runExperiment wraps a runner with event-throughput accounting: with
// -verbose each experiment reports how many discrete events its
// simulations fired and the aggregate events/sec of wall time, so a
// wall-clock win is attributable to scheduler throughput (ns/event)
// vs. fan-out (concurrent runs).
func runExperiment(name string, run func()) {
	if !*verboseFlag {
		run()
		return
	}
	before := scenario.EventsFired()
	start := time.Now()
	run()
	wall := time.Since(start)
	fired := scenario.EventsFired() - before
	rate := float64(fired) / wall.Seconds()
	fmt.Printf("\n[%s] framefeedback_sim_events_fired_total=%d wall=%.3fs rate=%.2fM events/s parallel=%d\n",
		name, fired, wall.Seconds(), rate/1e6, effectiveWorkers())
}

// effectiveWorkers resolves the 0 = GOMAXPROCS default for display.
func effectiveWorkers() int {
	if n := workers(); n > 0 {
		return n
	}
	return parfan.DefaultWorkers()
}

func header(title string) {
	fmt.Printf("\n================ %s ================\n\n", title)
}

func writeCSV(name string, tb *metrics.Table) {
	if *outFlag == "" {
		return
	}
	if err := os.MkdirAll(*outFlag, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "csv: %v\n", err)
		return
	}
	path := filepath.Join(*outFlag, name)
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "csv: %v\n", err)
		return
	}
	defer f.Close()
	if err := tb.WriteCSV(f); err != nil {
		fmt.Fprintf(os.Stderr, "csv: %v\n", err)
		return
	}
	fmt.Printf("  (trace written to %s)\n", path)
}

// table2 reproduces Table II: local processing rates per device and
// model — both the calibrated profile values and rates measured by
// actually running the local-only pipeline.
func table2() {
	header("Table II: local processing rates P_l (fps)")
	rows := [][]string{}
	for _, m := range []models.Model{models.MobileNetV3Small, models.EfficientNetB0} {
		for _, dev := range models.AllDevices() {
			cfg := scenario.Config{
				Seed:       *seedFlag,
				Policy:     scenario.LocalOnlyFactory(),
				FrameLimit: 900,
				Devices:    []scenario.DeviceSpec{{Profile: dev, Model: m}},
			}
			r := scenario.Run(cfg)
			measured := r.MeanP(5, 30)
			rows = append(rows, []string{
				m.String(), dev.Name,
				fmt.Sprintf("%.1f", dev.LocalRate(m)),
				fmt.Sprintf("%.1f", measured),
			})
		}
	}
	plot.RenderTable(os.Stdout, []string{"model", "device", "paper P_l", "measured P_l"}, rows)
}

// table3 reproduces Table III plus the §II-D accuracy trade-off.
func table3() {
	header("Table III: Top-1 model accuracy")
	rows := [][]string{}
	for _, m := range models.All() {
		rows = append(rows, []string{
			m.String(),
			fmt.Sprintf("%.1f%%", m.TopOneAccuracy()*100),
			fmt.Sprintf("%d", m.NativeResolution()),
		})
	}
	plot.RenderTable(os.Stdout, []string{"model", "top-1", "native res"}, rows)

	fmt.Println("\nAccuracy / bytes trade-off (§II-D), MobileNetV3Small:")
	rows = rows[:0]
	size := frame.DefaultSizeModel()
	for _, c := range []struct {
		res frame.Resolution
		q   frame.Quality
	}{{160, 50}, {224, 50}, {224, 75}, {224, 95}, {380, 85}} {
		rows = append(rows, []string{
			c.res.String(), fmt.Sprintf("q%d", c.q),
			fmt.Sprintf("%.1f%%", models.AccuracyAt(models.MobileNetV3Small, c.res, c.q)*100),
			fmt.Sprintf("%d B", size.MeanBytes(c.res, c.q)),
		})
	}
	plot.RenderTable(os.Stdout, []string{"resolution", "quality", "est. top-1", "bytes/frame"}, rows)
}

// fig2 reproduces Figure 2: P_o traces for different (K_P, K_D)
// settings with 7% loss injected at t = 27 s.
func fig2() {
	header("Figure 2: controller tuning (7% loss at t = 27s)")
	chart := plot.NewChart("P_o over time (s)")
	chart.YMin, chart.YMax = 0, 31
	rows := [][]string{}
	csv := metrics.NewTable()
	for i, pair := range scenario.TuningPairs() {
		cfg := scenario.TuningExperiment(pair[0], pair[1])
		cfg.Seed = *seedFlag
		r := scenario.Run(cfg)
		name := fmt.Sprintf("KP=%.2f KD=%.2f", pair[0], pair[1])
		chart.Add(name, r.Po)
		pre := metrics.Summarize(r.Po[20:26])
		post := metrics.Summarize(r.Po[35:58])
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%.1f", pre.Mean),
			fmt.Sprintf("%.1f", post.Mean),
			fmt.Sprintf("%.2f", post.Std),
		})
		if i == 0 {
			csv.AddColumn("t", r.Time)
		}
		csv.AddColumn("Po_"+name, r.Po)
	}
	chart.Render(os.Stdout)
	fmt.Println()
	plot.RenderTable(os.Stdout,
		[]string{"tuning", "Po before loss", "Po after loss", "Po std after loss"}, rows)
	writeCSV("fig2.csv", csv)
}

// runPolicies executes cfgFor(policy) for each paper policy, fanning
// the four runs out across the -parallel worker pool, and returns
// results keyed by policy name.
func runPolicies(cfgFor func(scenario.PolicyFactory) scenario.Config) map[string]*scenario.Result {
	return scenario.RunPolicies(func(f scenario.PolicyFactory) scenario.Config {
		cfg := cfgFor(f)
		cfg.Seed = *seedFlag
		return cfg
	})
}

func renderPolicyFigure(title string, results map[string]*scenario.Result, phases [][2]int, phaseNames []string, csvName string) {
	chart := plot.NewChart(title)
	chart.YMin, chart.YMax = 0, 32
	csv := metrics.NewTable()
	first := true
	for _, name := range scenario.PolicyOrder() {
		r := results[name]
		chart.Add(name, r.P)
		if first {
			csv.AddColumn("t", r.Time)
			first = false
		}
		csv.AddColumn("P_"+name, r.P)
		if name == "FrameFeedback" {
			csv.AddColumn("Po_FrameFeedback", r.Po)
			csv.AddColumn("T_FrameFeedback", r.TRate)
		}
	}
	chart.Render(os.Stdout)
	fmt.Println()
	headers := append([]string{"policy", "mean P"}, phaseNames...)
	rows := [][]string{}
	for _, name := range scenario.PolicyOrder() {
		r := results[name]
		row := []string{name, fmt.Sprintf("%5.2f", r.MeanP(0, 0))}
		for _, ph := range phases {
			row = append(row, fmt.Sprintf("%5.2f", r.MeanP(ph[0], ph[1])))
		}
		rows = append(rows, row)
	}
	plot.RenderTable(os.Stdout, headers, rows)
	writeCSV(csvName, csv)
}

// fig3 reproduces Figure 3: throughput under the Table V network
// schedule for all four controllers.
func fig3() {
	header("Figure 3: throughput under Table V network conditions")
	results := runPolicies(scenario.NetworkExperiment)
	renderPolicyFigure("P over time (s) — Table V schedule", results,
		[][2]int{{2, 30}, {32, 45}, {47, 60}, {62, 90}, {92, 105}, {107, 133}},
		[]string{"10Mbps", "4Mbps", "1Mbps", "10Mbps", "10M+7%", "4M+7%"},
		"fig3.csv")
}

// fig4 reproduces Figure 4: throughput under the Table VI server-load
// schedule.
func fig4() {
	header("Figure 4: throughput under Table VI server load")
	results := runPolicies(scenario.ServerLoadExperiment)
	renderPolicyFigure("P over time (s) — Table VI load", results,
		[][2]int{{2, 10}, {12, 20}, {22, 35}, {37, 50}, {52, 60}, {62, 75}, {77, 90}, {92, 100}, {102, 133}},
		[]string{"r=0", "r=90", "r=120", "r=135", "r=150", "r=130", "r=120", "r=90", "r=0"},
		"fig4.csv")
}

// cpu reproduces the §II-A5 CPU usage claim.
func cpu() {
	header("CPU usage: local execution vs offloading (§II-A5)")
	local := scenario.Run(scenario.Config{
		Seed: *seedFlag, Policy: scenario.LocalOnlyFactory(), FrameLimit: 900,
		Devices: []scenario.DeviceSpec{{Profile: models.Pi4B14()}},
	})
	off := scenario.Run(scenario.Config{
		Seed: *seedFlag, Policy: scenario.AlwaysOffloadFactory(), FrameLimit: 900,
		Devices: []scenario.DeviceSpec{{Profile: models.Pi4B14()}},
	})
	rows := [][]string{
		{"local only", "50.2%", fmt.Sprintf("%.1f%%", metrics.Mean(local.CPU[5:30]))},
		{"full offload", "22.3%", fmt.Sprintf("%.1f%%", metrics.Mean(off.CPU[5:30]))},
	}
	plot.RenderTable(os.Stdout, []string{"mode", "paper CPU", "measured CPU"}, rows)
}

// factor reproduces the headline comparison: FrameFeedback vs the
// DeepDecision-style baseline under suboptimal conditions
// (contribution 4: "outperforms ... by more than a factor of two").
func factor() {
	header("FrameFeedback vs DeepDecision-style baseline (degraded phases)")
	ff := scenario.Run(withSeed(scenario.NetworkExperiment(scenario.FrameFeedbackFactory(controller.Config{}))))
	aon := scenario.Run(withSeed(scenario.NetworkExperiment(scenario.AllOrNothingFactory())))
	rows := [][]string{}
	for _, ph := range []struct {
		name     string
		from, to int
	}{
		{"4 Mbps (30-45s)", 32, 45},
		{"1 Mbps (45-60s)", 47, 60},
		{"10 Mbps + 7% (90-105s)", 92, 105},
		{"4 Mbps + 7% (105s+)", 107, 133},
	} {
		f := ff.MeanP(ph.from, ph.to)
		a := aon.MeanP(ph.from, ph.to)
		rows = append(rows, []string{
			ph.name, fmt.Sprintf("%5.2f", f), fmt.Sprintf("%5.2f", a),
			fmt.Sprintf("%.2fx", f/a),
		})
	}
	plot.RenderTable(os.Stdout, []string{"phase", "FrameFeedback P", "AllOrNothing P", "factor"}, rows)
}

func withSeed(cfg scenario.Config) scenario.Config {
	cfg.Seed = *seedFlag
	return cfg
}

// ablations quantifies the paper's design choices (DESIGN.md E8–E10).
func ablations() {
	header("Ablations: FrameFeedback design choices (Table V workload)")
	variants := []struct {
		name string
		f    scenario.PolicyFactory
	}{
		{"FrameFeedback (paper)", scenario.FrameFeedbackFactory(controller.Config{})},
		{"symmetric clamps (E8)", scenario.FrameFeedbackFactory(controller.SymmetricClampConfig())},
		{"naive PV (E9)", func() controller.Policy { return controller.NewNaivePV() }},
		{"with integral (E10)", scenario.FrameFeedbackFactory(controller.WithIntegralConfig())},
	}
	rows := [][]string{}
	for _, v := range variants {
		r := scenario.Run(withSeed(scenario.NetworkExperiment(v.f)))
		// Po held during the 1 Mbps phase: offloads beyond what the
		// channel supports are pure waste (every one times out), so
		// lower is better once the channel is saturated.
		po1m := metrics.Mean(r.Po[47:60])
		rows = append(rows, []string{
			v.name,
			fmt.Sprintf("%5.2f", r.MeanP(0, 0)),
			fmt.Sprintf("%5.2f", r.MeanP(32, 60)),  // degraded bandwidth
			fmt.Sprintf("%5.2f", r.MeanP(92, 133)), // lossy phases
			fmt.Sprintf("%5.2f", r.MeanT(0, 0)),
			fmt.Sprintf("%5.2f", po1m),
		})
	}
	plot.RenderTable(os.Stdout,
		[]string{"variant", "mean P", "P (low bw)", "P (lossy)", "mean T", "Po @1Mbps"}, rows)
}

// --- Extension experiments (E11–E15) --------------------------------

// energy reports the power/energy consequences of offloading (E11):
// the paper asserts offloading saves power (§II-A5); the model makes
// it quantitative.
func energy() {
	header("E11: device power and energy per inference")
	rows := [][]string{}
	for _, name := range scenario.PolicyOrder() {
		cfg := withSeed(scenario.Config{
			Policy:     scenario.AllPolicies()[name],
			FrameLimit: 1800,
			Devices:    []scenario.DeviceSpec{{Profile: models.Pi4B14()}},
		})
		r := scenario.Run(cfg)
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%5.2f", r.MeanP(5, 0)),
			fmt.Sprintf("%4.2f W", r.MeanPower()),
			fmt.Sprintf("%5.3f J", r.EnergyPerInference()),
		})
	}
	plot.RenderTable(os.Stdout, []string{"policy", "mean P", "mean power", "energy/inference"}, rows)
}

// combined runs Table V network degradation and Table VI server load
// simultaneously (E12) — the case the paper mentions in §IV-C but cuts
// for space.
func combined() {
	header("E12: combined network degradation + server load")
	results := runPolicies(scenario.CombinedExperiment)
	renderPolicyFigure("P over time (s) — Table V network AND Table VI load", results,
		[][2]int{{2, 30}, {32, 45}, {47, 60}, {62, 90}, {92, 105}, {107, 133}},
		[]string{"10Mbps", "4Mbps", "1Mbps", "10Mbps", "10M+7%", "4M+7%"},
		"combined.csv")
}

// burst swaps Bernoulli loss for a bursty Gilbert–Elliott channel of
// similar mean rate (E13).
func burst() {
	header("E13: bursty (Gilbert–Elliott) loss, ~7% mean, from t = 30s")
	results := runPolicies(scenario.BurstLossExperiment)
	renderPolicyFigure("P over time (s) — burst-loss channel", results,
		[][2]int{{2, 30}, {35, 133}},
		[]string{"clean", "bursty"},
		"burst.csv")
}

// qualityExp demonstrates the adaptive frame-quality ladder (E14).
func qualityExp() {
	header("E14: adaptive frame quality (accuracy/bytes ladder) on Table V")
	adaptive := scenario.Run(withSeed(scenario.QualityExperiment()))
	fixed := scenario.Run(withSeed(scenario.NetworkExperiment(
		scenario.FrameFeedbackFactory(controller.Config{}))))
	chart := plot.NewChart("Offloaded frame size (bytes) chosen by the ladder")
	chart.Add("adaptive", adaptive.QualityBytes)
	chart.Add("fixed 380x380@85", fixed.QualityBytes)
	chart.Render(os.Stdout)
	fmt.Println()
	rows := [][]string{}
	for _, ph := range []struct {
		name     string
		from, to int
	}{
		{"10 Mbps", 10, 28}, {"4 Mbps", 32, 45}, {"1 Mbps", 47, 60},
		{"10M + 7%", 92, 105}, {"whole run", 0, 0},
	} {
		rows = append(rows, []string{
			ph.name,
			fmt.Sprintf("%5.2f / %5.2f", adaptive.MeanAccP(ph.from, ph.to), fixed.MeanAccP(ph.from, ph.to)),
			fmt.Sprintf("%5.2f / %5.2f", adaptive.MeanP(ph.from, ph.to), fixed.MeanP(ph.from, ph.to)),
		})
	}
	plot.RenderTable(os.Stdout, []string{"phase", "AccP adaptive/fixed", "P adaptive/fixed"}, rows)
}

// fairness measures how the batcher splits saturated capacity across
// identical tenants (E15).
func fairness() {
	header("E15: multi-tenant fairness under contention (4 identical Pis, 120 req/s background)")
	r := scenario.Run(withSeed(scenario.FairnessExperiment(
		scenario.FrameFeedbackFactory(controller.Config{}), 4)))
	rows := [][]string{}
	completed := []float64{}
	for i, ten := range r.Tenants {
		completed = append(completed, float64(ten.Completed))
		rows = append(rows, []string{
			fmt.Sprintf("device %d", i),
			fmt.Sprintf("%d", ten.Submitted),
			fmt.Sprintf("%d", ten.Completed),
			fmt.Sprintf("%d", ten.Rejected),
		})
	}
	plot.RenderTable(os.Stdout, []string{"tenant", "submitted", "completed", "rejected"}, rows)
	fmt.Printf("\nJain fairness index over completed offloads: %.3f (1.0 = perfectly fair)\n",
		metrics.JainIndex(completed))
}

// tune runs the relay auto-tuning experiment (controller.RelayPolicy +
// EstimateUltimate) and compares the derived gains with Table IV.
func tune() {
	header("Relay auto-tuning (Åström–Hägglund) on the 4 Mbps substrate")
	r := scenario.Run(withSeed(scenario.RelayTuningExperiment(16, 5)))
	u, err := controller.EstimateUltimate(r.Po, r.TRate, 5, 20)
	if err != nil {
		fmt.Printf("relay experiment failed: %v\n", err)
		return
	}
	kp, kd := u.PDGains()
	rows := [][]string{
		{"ultimate gain Ku", fmt.Sprintf("%.3f", u.Ku)},
		{"ultimate period Tu", fmt.Sprintf("%.1f ticks", u.Tu)},
		{"cycles observed", fmt.Sprintf("%d", u.Cycles)},
		{"derived K_P (ZN PD)", fmt.Sprintf("%.3f  (paper: 0.2)", kp)},
		{"derived K_D (ZN PD)", fmt.Sprintf("%.3f  (paper: 0.26)", kd)},
	}
	plot.RenderTable(os.Stdout, []string{"quantity", "value"}, rows)

	tuned := scenario.Run(withSeed(scenario.Config{
		Policy:     scenario.FrameFeedbackFactory(controller.Config{KP: kp, KD: kd}),
		FrameLimit: 1800,
		Network:    scenario.RelayTuningExperiment(16, 5).Network,
		Devices:    []scenario.DeviceSpec{{Profile: models.Pi4B14()}},
	}))
	paper := scenario.Run(withSeed(scenario.Config{
		Policy:     scenario.FrameFeedbackFactory(controller.Config{}),
		FrameLimit: 1800,
		Network:    scenario.RelayTuningExperiment(16, 5).Network,
		Devices:    []scenario.DeviceSpec{{Profile: models.Pi4B14()}},
	}))
	fmt.Printf("\nclosed-loop check on 4 Mbps: derived gains P = %.2f, paper gains P = %.2f\n",
		tuned.MeanP(20, 60), paper.MeanP(20, 60))
}

// latency reports end-to-end offload latency percentiles per policy on
// the Table V workload — the QoS detail behind the deadline metric.
func latency() {
	header("Offload latency percentiles (successful offloads, Table V workload)")
	rows := [][]string{}
	for _, name := range scenario.PolicyOrder() {
		if name == "LocalOnly" {
			continue // no offloads, no latencies
		}
		r := scenario.Run(withSeed(scenario.NetworkExperiment(scenario.AllPolicies()[name])))
		lat := r.OffloadLatency
		att := r.Device.OffloadAttempts
		missPct := 0.0
		if att > 0 {
			missPct = 100 * float64(r.Device.Timeouts()) / float64(att)
		}
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%d", lat.N),
			fmt.Sprintf("%4.0f ms", lat.P50*1000),
			fmt.Sprintf("%4.0f ms", lat.P90*1000),
			fmt.Sprintf("%4.0f ms", lat.P99*1000),
			fmt.Sprintf("%4.1f%%", missPct),
		})
	}
	plot.RenderTable(os.Stdout,
		[]string{"policy", "samples", "P50", "P90", "P99", "deadline misses"}, rows)
}

// deadline sweeps the end-to-end deadline on a constrained 4 Mbps
// link (E17). Note the non-monotonicity: a tighter deadline gives the
// controller faster feedback and curbs bufferbloat.
func deadline() {
	header("E17: deadline sensitivity (FrameFeedback, constant 4 Mbps)")
	deadlines := []time.Duration{
		100 * time.Millisecond, 150 * time.Millisecond, 200 * time.Millisecond,
		250 * time.Millisecond, 350 * time.Millisecond, 500 * time.Millisecond,
	}
	rows := parfan.Map(workers(), deadlines, func(_ int, d time.Duration) []string {
		r := scenario.Run(withSeed(scenario.DeadlineSweepExperiment(d)))
		return []string{
			d.String(),
			fmt.Sprintf("%5.2f", r.MeanP(15, 0)),
			fmt.Sprintf("%5.2f", r.MeanT(15, 0)),
			fmt.Sprintf("%4.0f ms", r.OffloadLatency.P99*1000),
		}
	})
	plot.RenderTable(os.Stdout, []string{"deadline", "mean P", "mean T", "P99 latency"}, rows)
	fmt.Println("\nThroughput is not monotone in the deadline: a looser deadline lets")
	fmt.Println("the bottleneck queue grow longer before timeouts fire, and every")
	fmt.Println("late frame still burned uplink bandwidth (closed-loop bufferbloat).")
}

// heterofair compares FIFO vs fair shedding when one greedy
// always-offload tenant contends with three FrameFeedback tenants
// (E16).
func heterofair() {
	header("E16: heterogeneous tenants — FIFO vs fair shedding")
	for _, shed := range []server.ShedPolicy{server.ShedFIFO, server.ShedFair} {
		r := scenario.Run(withSeed(scenario.HeterogeneousFairnessExperiment(shed)))
		fmt.Printf("shed policy: %v\n", shed)
		rows := [][]string{}
		xs := []float64{}
		for i, ten := range r.Tenants {
			kind := "FrameFeedback"
			if i == 3 {
				kind = "AlwaysOffload (greedy)"
			}
			xs = append(xs, float64(ten.Completed))
			rows = append(rows, []string{
				fmt.Sprintf("device %d (%s)", i, kind),
				fmt.Sprintf("%d", ten.Submitted),
				fmt.Sprintf("%d", ten.Completed),
				fmt.Sprintf("%d", ten.Rejected),
			})
		}
		plot.RenderTable(os.Stdout, []string{"tenant", "submitted", "completed", "rejected"}, rows)
		fmt.Printf("Jain index: %.3f\n\n", metrics.JainIndex(xs))
	}
}

// robustness re-runs the Figure 3 comparison across seeds: the
// reproduction's shapes must not be a single-seed artifact.
func robustness() {
	header("Robustness: Figure 3 headline numbers across 10 seeds")
	type seedOutcome struct{ ffMean, worst float64 }
	outcomes := parfan.MapN(workers(), 10, func(i int) seedOutcome {
		seed := uint64(i + 1)
		ffCfg := scenario.NetworkExperiment(scenario.FrameFeedbackFactory(controller.Config{}))
		ffCfg.Seed = seed
		aonCfg := scenario.NetworkExperiment(scenario.AllOrNothingFactory())
		aonCfg.Seed = seed
		ff := scenario.Run(ffCfg)
		aon := scenario.Run(aonCfg)
		worst := 1e18
		for _, ph := range [][2]int{{32, 45}, {47, 60}, {107, 133}} {
			if f := ff.MeanP(ph[0], ph[1]) / aon.MeanP(ph[0], ph[1]); f < worst {
				worst = f
			}
		}
		return seedOutcome{ffMean: ff.MeanP(0, 0), worst: worst}
	})
	var ffMeans, factors []float64
	for _, o := range outcomes {
		ffMeans = append(ffMeans, o.ffMean)
		factors = append(factors, o.worst)
	}
	sm := metrics.Summarize(ffMeans)
	sf := metrics.Summarize(factors)
	rows := [][]string{
		{"FrameFeedback mean P", fmt.Sprintf("%.2f ± %.2f", sm.Mean, sm.Std), fmt.Sprintf("[%.2f, %.2f]", sm.Min, sm.Max)},
		{"min factor vs AllOrNothing", fmt.Sprintf("%.2f ± %.2f", sf.Mean, sf.Std), fmt.Sprintf("[%.2f, %.2f]", sf.Min, sf.Max)},
	}
	plot.RenderTable(os.Stdout, []string{"quantity", "mean ± std", "range"}, rows)
}

// aimd compares the TCP-style AIMD rule against FrameFeedback on the
// Table V workload — the congestion-control strawman.
func aimd() {
	header("AIMD (TCP-style) vs FrameFeedback on Table V")
	ff := scenario.Run(withSeed(scenario.NetworkExperiment(
		scenario.FrameFeedbackFactory(controller.Config{}))))
	am := scenario.Run(withSeed(scenario.NetworkExperiment(
		func() controller.Policy { return baselines.NewAIMD() })))
	rows := [][]string{}
	for _, ph := range []struct {
		name     string
		from, to int
	}{
		{"10 Mbps", 2, 30}, {"4 Mbps", 32, 45}, {"1 Mbps", 47, 60},
		{"4 Mbps + 7%", 107, 133}, {"overall", 0, 0},
	} {
		rows = append(rows, []string{
			ph.name,
			fmt.Sprintf("%5.2f", ff.MeanP(ph.from, ph.to)),
			fmt.Sprintf("%5.2f", am.MeanP(ph.from, ph.to)),
		})
	}
	plot.RenderTable(os.Stdout, []string{"phase", "FrameFeedback P", "AIMD P"}, rows)
	fmt.Printf("\nmean T: FrameFeedback %.2f/s, AIMD %.2f/s — AIMD's multiplicative\n",
		ff.MeanT(0, 0), am.MeanT(0, 0))
	fmt.Println("halving on any timeout produces the classic sawtooth instead of")
	fmt.Println("settling at the tolerated-timeout operating point.")
}

// admitcap is the E18 ablation: rejection timing. The paper sheds
// overflow only at batch formation; admission control rejects at
// submit, delivering T_l feedback to devices up to one batch earlier.
func admitcap() {
	header("E18: rejection timing — shed at batch formation vs admission control")
	base := scenario.Config{
		Policy:     scenario.FrameFeedbackFactory(controller.Config{}),
		FrameLimit: 1800,
		Devices:    []scenario.DeviceSpec{{Profile: models.Pi4B14()}},
		Load:       workload.LoadSchedule{{Start: 0, Rate: 140}},
	}
	rows := [][]string{}
	for _, v := range []struct {
		name string
		cap  int
	}{
		{"shed at formation (paper)", 0},
		{"admission control, cap 20", 20},
		{"admission control, cap 15", 15},
	} {
		cfg := withSeed(base)
		cfg.AdmitCap = v.cap
		r := scenario.Run(cfg)
		rows = append(rows, []string{
			v.name,
			fmt.Sprintf("%5.2f", r.MeanP(15, 0)),
			fmt.Sprintf("%5.2f", r.MeanT(15, 0)),
			fmt.Sprintf("%4.0f ms", r.OffloadLatency.P99*1000),
		})
	}
	plot.RenderTable(os.Stdout, []string{"variant", "mean P", "mean T", "P99 latency"}, rows)
}

// application is the app-layer evaluation (E19): the Table V scenario
// scored by a perimeter-surveillance monitor — event recall and
// detection latency instead of raw throughput.
func application() {
	header("E19: application-level metrics (fast-moving objects, Table V network, 5 scenes)")
	rows := [][]string{}
	for _, name := range []string{"FrameFeedback", "AllOrNothing", "LocalOnly"} {
		factory := scenario.AllPolicies()[name]
		var recalls, lats []float64
		caught, total := 0, 0
		for rep := uint64(0); rep < 5; rep++ {
			scene := app.GenerateScene(rng.New(*seedFlag+rep), app.SceneConfig{
				Duration:        133 * time.Second,
				EventsPerMinute: 30,
				MeanVisible:     400 * time.Millisecond,
				MinVisible:      150 * time.Millisecond,
			})
			monitor := app.NewMonitor(scene, rng.New(*seedFlag+100+rep),
				models.MobileNetV3Small.TopOneAccuracy())
			cfg := scenario.NetworkExperiment(factory)
			cfg.Seed = *seedFlag + rep
			cfg.OnOffload = func(o device.OffloadOutcome) {
				if o.Status == device.OffloadSucceeded {
					monitor.OnResult(o.CapturedAt, o.ResolvedAt)
				}
			}
			cfg.OnLocalDone = func(f frame.Frame, finishedAt simtime.Time) {
				monitor.OnResult(f.CapturedAt, finishedAt)
			}
			scenario.Run(cfg)
			recalls = append(recalls, monitor.Recall())
			lats = append(lats, monitor.DetectionLatency().Mean)
			caught += monitor.Detected()
			total += len(scene.Events)
		}
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%d/%d", caught, total),
			fmt.Sprintf("%5.1f%%", metrics.Mean(recalls)*100),
			fmt.Sprintf("%4.0f ms", metrics.Mean(lats)*1000),
		})
	}
	plot.RenderTable(os.Stdout, []string{"controller", "caught (5 scenes)", "mean recall", "mean detect latency"}, rows)
}

// sweep maps the tuning surface: mean P and mean T over a K_P × K_D
// grid on the lossy half of the Figure 2 setup. It shows the paper's
// Table IV gains sitting on a robust plateau rather than a knife
// edge.
func sweep() {
	header("Gain surface: K_P x K_D sweep (10 Mbps + 7% loss from t = 27s)")
	kps := []float64{0.05, 0.1, 0.2, 0.35, 0.5}
	kds := []float64{0, 0.1, 0.26, 0.5}
	meanP := make([][]float64, len(kds))
	meanT := make([][]float64, len(kds))
	rowLabels := make([]string, len(kds))
	colLabels := make([]string, len(kps))
	for j, kp := range kps {
		colLabels[j] = fmt.Sprintf("KP=%.2f", kp)
	}
	for i, kd := range kds {
		rowLabels[i] = fmt.Sprintf("KD=%.2f", kd)
		meanP[i] = make([]float64, len(kps))
		meanT[i] = make([]float64, len(kps))
	}
	// Flatten the grid so every cell is one task for the worker pool.
	type cell struct{ p, osc float64 }
	cells := parfan.MapN(workers(), len(kds)*len(kps), func(k int) cell {
		cfg := scenario.TuningExperiment(kps[k%len(kps)], kds[k/len(kps)])
		cfg.Seed = *seedFlag
		r := scenario.Run(cfg)
		// Whole-run throughput punishes sluggish ramps;
		// post-loss Po oscillation punishes undamped gains.
		return cell{p: r.MeanP(0, 0), osc: metrics.Summarize(r.Po[35:58]).Std}
	})
	for k, c := range cells {
		meanP[k/len(kps)][k%len(kps)] = c.p
		meanT[k/len(kps)][k%len(kps)] = c.osc
	}
	hm := &plot.Heatmap{
		Title:     "whole-run mean P (higher is better; includes the ramp)",
		RowLabels: rowLabels, ColLabels: colLabels, Values: meanP,
	}
	hm.Render(os.Stdout)
	fmt.Println()
	hm2 := &plot.Heatmap{
		Title:     "post-loss Po oscillation, std (lower is better)",
		RowLabels: rowLabels, ColLabels: colLabels, Values: meanT,
		Format: "%5.2f",
	}
	hm2.Render(os.Stdout)
	fmt.Println("\nHow to read it: the two surfaces are the sensitivity/stability")
	fmt.Println("trade-off from §III-B. Sluggish gains (KP=0.05) buy very low")
	fmt.Println("oscillation at a visible throughput cost; hotter gains climb the P")
	fmt.Println("plateau but oscillate more. The Table IV tuning (0.2, 0.26) sits on")
	fmt.Println("the plateau; Figure 2 (ffexperiments -exp fig2) shows its trace next")
	fmt.Println("to the alternatives.")
}

// realExp is E20: sim-vs-real validation. It runs the identical
// controller over loopback TCP (internal/realnet) through a
// healthy→degraded→healed server schedule and checks the same three
// qualitative behaviours the simulator exhibits: ramp to full
// offload, hard backoff under degradation, prompt recovery. Wall
// clock ~12 s, so it is opt-in (not part of -exp all).
func realExp() {
	header("E20: sim-vs-real validation (loopback TCP, ~12s wall clock)")
	srv, err := realnet.NewServer(realnet.ServerConfig{Addr: "127.0.0.1:0", TimeScale: 0.1})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	defer srv.Close()
	client, err := realnet.Dial(realnet.ClientConfig{
		Addr:      srv.Addr().String(),
		FS:        60,
		Deadline:  150 * time.Millisecond,
		Tick:      250 * time.Millisecond,
		TimeScale: 0.1,
		Policy:    controller.NewFrameFeedback(controller.Config{}),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	defer client.Close()

	sample := func(d time.Duration) float64 {
		time.Sleep(d)
		return client.Po()
	}
	healthy := sample(4 * time.Second)
	srv.SetExtraDelay(400 * time.Millisecond)
	degraded := sample(4 * time.Second)
	srv.SetExtraDelay(0)
	recovered := sample(4 * time.Second)

	rows := [][]string{
		{"ramp to high offload", fmt.Sprintf("Po=%.1f of 60", healthy), pass(healthy > 40)},
		{"backoff under degradation", fmt.Sprintf("Po=%.1f", degraded), pass(degraded < healthy/2)},
		{"recovery after healing", fmt.Sprintf("Po=%.1f", recovered), pass(recovered > degraded+10)},
	}
	plot.RenderTable(os.Stdout, []string{"behaviour", "measured", "verdict"}, rows)
	st := client.Stats()
	fmt.Printf("\ndevice totals: %d captured, %d offloaded (%d ok, %d timeouts), %d local\n",
		st.Captured, st.OffloadAttempts, st.OffloadOK, st.Timeouts(), st.LocalDone)
	fmt.Println("The simulator shows the same three phases (see -exp fig2/fig3); the")
	fmt.Println("controller code is byte-identical in both modes.")
}

func pass(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}

// batchsweep is E21: why the paper caps batches at 15. Sweep the
// server's batch limit under Table VI load with the measured device
// offloading via FrameFeedback.
func batchsweep() {
	header("E21: server batch-limit sweep (Table VI load)")
	rows := parfan.Map(workers(), []int{5, 10, 15, 25, 50}, func(_ int, maxBatch int) []string {
		cfg := withSeed(scenario.ServerLoadExperiment(
			scenario.FrameFeedbackFactory(controller.Config{})))
		cfg.ServerMaxBatch = maxBatch
		r := scenario.Run(cfg)
		return []string{
			fmt.Sprintf("%d", maxBatch),
			fmt.Sprintf("%5.2f", r.MeanP(0, 0)),
			fmt.Sprintf("%5.2f", r.MeanP(50, 60)), // peak 150 req/s
			fmt.Sprintf("%4.0f ms", r.OffloadLatency.P99*1000),
			fmt.Sprintf("%4.1f", r.Server.MeanBatchSize()),
		}
	})
	plot.RenderTable(os.Stdout,
		[]string{"batch limit", "mean P", "P @150 req/s", "P99 latency", "mean batch"}, rows)
	fmt.Println("\nSmall batches forfeit GPU throughput (the setup cost amortizes")
	fmt.Println("poorly); huge batches inflate queueing+execution latency toward the")
	fmt.Println("250 ms deadline. The paper's 15 sits at the throughput/latency knee.")
}

// ticksweep is E22/E23: the Table IV \"Measure Frequency 1\" choice and
// the T-averaging window. Sub-second ticks quantize T coarsely (one
// timeout in 250 ms reads as 4/s) and amplify the derivative term;
// long windows slow the reaction.
func ticksweep() {
	header("E22/E23: control tick and T-window sweep (Table V workload)")
	fmt.Println("control tick (window fixed at 3):")
	ticks := []time.Duration{250 * time.Millisecond, 500 * time.Millisecond, time.Second, 2 * time.Second, 4 * time.Second}
	rows := parfan.Map(workers(), ticks, func(_ int, tick time.Duration) []string {
		cfg := withSeed(scenario.NetworkExperiment(
			scenario.FrameFeedbackFactory(controller.Config{})))
		cfg.Tick = tick
		r := scenario.Run(cfg)
		return []string{
			tick.String(),
			fmt.Sprintf("%5.2f", r.MeanP(0, 0)),
			fmt.Sprintf("%5.2f", r.MeanT(0, 0)),
		}
	})
	plot.RenderTable(os.Stdout, []string{"tick", "mean P", "mean T"}, rows)
	fmt.Println("\nT-averaging window (tick fixed at 1s):")
	rows = parfan.Map(workers(), []int{1, 3, 5, 10}, func(_ int, win int) []string {
		cfg := withSeed(scenario.NetworkExperiment(
			scenario.FrameFeedbackFactory(controller.Config{KP: 0.2, KD: 0.26, Window: win})))
		r := scenario.Run(cfg)
		return []string{
			fmt.Sprintf("%d s", win),
			fmt.Sprintf("%5.2f", r.MeanP(0, 0)),
			fmt.Sprintf("%5.2f", r.MeanT(0, 0)),
		}
	})
	plot.RenderTable(os.Stdout, []string{"window", "mean P", "mean T"}, rows)
}

// delaysweep is E24: the paper's §IV-C1 claim that added latency is a
// blunter degradation knob than rate or loss ("we believe that rate
// and loss are better tools to induce timeouts as they are more
// indirect"). Sweeping pure propagation delay confirms it: the
// deadline either absorbs the delay completely or fails totally, with
// a cliff in between — no graded intermediate regime for a controller
// to navigate.
func delaysweep() {
	header("E24: pure added delay vs the 250 ms deadline (10 Mbps, no loss)")
	delays := []time.Duration{
		5 * time.Millisecond, 30 * time.Millisecond, 60 * time.Millisecond,
		90 * time.Millisecond, 110 * time.Millisecond, 150 * time.Millisecond,
	}
	rows := parfan.Map(workers(), delays, func(_ int, prop time.Duration) []string {
		cfg := scenario.Config{
			Seed:       *seedFlag,
			Policy:     scenario.FrameFeedbackFactory(controller.Config{}),
			FrameLimit: 1800,
			Devices:    []scenario.DeviceSpec{{Profile: models.Pi4B14()}},
			Network: simnet.Schedule{{Start: 0, Cond: simnet.Conditions{
				BandwidthBps: simnet.Mbps(10), PropDelay: prop,
			}}},
		}
		r := scenario.Run(cfg)
		return []string{
			prop.String(),
			fmt.Sprintf("%5.2f", r.MeanP(20, 0)),
			fmt.Sprintf("%5.2f", r.MeanT(20, 0)),
			fmt.Sprintf("%4.0f ms", r.OffloadLatency.P99*1000),
		}
	})
	plot.RenderTable(os.Stdout, []string{"one-way delay", "mean P (settled)", "mean T", "P99 latency"}, rows)
	fmt.Println("\nCompare the cliff here with the graded response to bandwidth (-exp")
	fmt.Println("deadline) and loss (-exp fig2): delay is either fully absorbed by the")
	fmt.Println("deadline margin or kills offloading outright, which is why the paper")
	fmt.Println("degrades the network with rate and loss instead.")
}

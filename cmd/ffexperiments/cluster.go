package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/plot"
	"repro/internal/scenario"
	"repro/internal/simtime"
	"repro/internal/spans"
	"repro/internal/telemetry"
)

// clusterExp is the multi-server resilience experiment (opt-in, not
// part of -exp all): eight FrameFeedback devices offload to an
// eight-member pool under sticky-with-failover placement, member 3 is
// crashed for 20 s mid-run, and the experiment reports how quickly the
// fleet's aggregate throughput reconverges, where the orphaned
// tenant's traffic failed over to, and how fair the fleet's per-tenant
// service stayed (Jain's index + work-conserving ratio).
func clusterExp() {
	header("Cluster: kill 1 of 8 servers, fleet reconvergence + per-tenant fairness")
	reg := telemetry.NewRegistry()
	cluster.RegisterMetrics(reg)
	faults.RegisterMetrics(reg)

	const fs = 30.0
	const poolSize = 8
	crash := faults.Injection{
		Kind: faults.ServerCrash, At: 40 * time.Second,
		Duration: 20 * time.Second, Server: 3,
	}
	devices := make([]scenario.DeviceSpec, poolSize)
	for i := range devices {
		devices[i] = scenario.DeviceSpec{Profile: models.Pi4B14()}
	}
	var tracer *spans.Tracer
	if *traceOutFlag != "" {
		tracer = spans.New(spans.Options{KeepAll: true})
	}
	r := scenario.Run(withSeed(scenario.Config{
		Policy:     scenario.FrameFeedbackFactory(controller.Config{}),
		FS:         fs,
		FrameLimit: 3000, // 100 s at 30 fps
		Devices:    devices,
		Cluster: &scenario.ClusterConfig{
			Members:   make([]scenario.ClusterMember, poolSize),
			Placement: cluster.PlaceSticky,
		},
		Faults:          faults.Plan{crash},
		CheckInvariants: true,
		Trace:           tracer,
	}))

	writeCSV("cluster.csv", r.Table())

	// Fleet reconvergence: sticky failover reroutes tenant 3 while its
	// home member is down, so aggregate throughput should return to the
	// pre-crash baseline almost immediately after the dip from the
	// dropped in-flight batch.
	startSec := int(crash.At / simtime.Time(time.Second))
	clearSec := int(crash.End() / simtime.Time(time.Second))
	baseline := metrics.Mean(r.TotalP[startSec-5 : startSec])
	during := metrics.Mean(r.TotalP[startSec+1 : clearSec])
	rec := reconvergence(r.TotalP, baseline, clearSec, 0.9)
	faults.ObserveRecovery(rec)
	recStr := "never"
	if rec >= 0 {
		recStr = fmt.Sprintf("%.0f s", rec)
	}
	plot.RenderTable(os.Stdout,
		[]string{"fault", "fleet P before", "fleet P during", "reconvergence", "verdict"},
		[][]string{{
			crash.String(),
			fmt.Sprintf("%6.2f", baseline),
			fmt.Sprintf("%6.2f", during),
			recStr,
			pass(rec >= 0),
		}})

	// Per-member dispatch accounting: member 3 should show the outage
	// (fewer dispatches, nonzero drops) and its failover target the
	// surplus.
	rows := [][]string{}
	for i := 0; i < poolSize; i++ {
		st := r.ClusterServers[i]
		rows = append(rows, []string{
			fmt.Sprintf("%d", i),
			fmt.Sprintf("%d", r.ClusterDispatched[i]),
			fmt.Sprintf("%d", st.Completed),
			fmt.Sprintf("%d", st.Dropped),
		})
	}
	fmt.Println()
	plot.RenderTable(os.Stdout,
		[]string{"server", "dispatched", "completed", "dropped"}, rows)

	fmt.Printf("\nsticky failovers: %d (%s)\n",
		r.ClusterFailovers, pass(r.ClusterFailovers > 0))
	fmt.Printf("per-tenant Jain index: %.4f (%s)\n",
		r.ClusterJain, pass(r.ClusterJain >= 0.95))
	fmt.Printf("work-conserving ratio: %.4f\n", r.ClusterWorkConserving)
	fmt.Printf("faults injected: %d; invariant checker: %s\n",
		r.FaultsInjected, pass(r.FaultsInjected == 1))

	if tracer != nil {
		// Per-stage sums must tile every successful offload's
		// end-to-end latency exactly (see -exp tracepath).
		okN, exact := 0, 0
		for _, rec := range tracer.Records() {
			if rec.Status != spans.VerdictOK {
				continue
			}
			okN++
			if rec.CriticalPathSum() == rec.Latency() {
				exact++
			}
		}
		fmt.Printf("stage sums vs end-to-end latency: %d/%d exact (%s)\n",
			exact, okN, pass(okN > 0 && exact == okN))
		writeTraceOut(tracer, "cluster")
	}

	if *verboseFlag {
		fmt.Println("\ntelemetry exposition (cluster + fault instruments):")
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}
}

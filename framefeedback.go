// Package framefeedback is the public facade of the FrameFeedback
// reproduction: a closed-loop control system for dynamically
// offloading real-time edge inference (Jackson, Ji & Nikolopoulos,
// IPPS 2024).
//
// # What it does
//
// An edge device captures video at a source frame rate F_s it cannot
// process locally (its local rate P_l < F_s). FrameFeedback picks an
// offloading rate P_o — how many frames per second to ship to a
// shared, GPU-equipped edge server — using nothing but the rate T of
// offloaded frames that violate a 250 ms end-to-end deadline. A
// discrete PD controller on the paper's piecewise error function
// drives P_o toward F_s while conditions allow, backs off up to 5×
// faster than it ramps when timeouts appear, and settles at a cheap
// 0.1·F_s availability probe when offloading is impossible.
//
// # Layout
//
// The controller itself is transport-agnostic (NewController /
// Measurement / Policy). Two complete substrates exercise it:
//
//   - a deterministic discrete-event simulator (RunScenario) with a
//     packet-level network emulator, a batching GPU server, and the
//     paper's device profiles — this regenerates every table and
//     figure of the paper (see cmd/ffexperiments and bench_test.go);
//   - a real-TCP mode (cmd/ffserver, cmd/ffdevice) running the
//     identical policy code over sockets and the wall clock.
//
// See DESIGN.md for the full system inventory and EXPERIMENTS.md for
// paper-vs-measured results.
package framefeedback

import (
	"repro/internal/baselines"
	"repro/internal/controller"
	"repro/internal/scenario"
)

// Core controller API.
type (
	// Config holds the controller gains and limits; the zero value
	// selects the paper's Table IV settings.
	Config = controller.Config
	// Measurement is the per-tick observation fed to a policy.
	Measurement = controller.Measurement
	// Policy is the interface every offloading controller satisfies.
	Policy = controller.Policy
	// Controller is the FrameFeedback PD controller.
	Controller = controller.FrameFeedback
)

// NewController builds the paper's controller; zero-value Config
// fields default to Table IV.
func NewController(cfg Config) *Controller {
	return controller.NewFrameFeedback(cfg)
}

// DefaultConfig returns the paper's Table IV settings (K_P = 0.2,
// K_I = 0, K_D = 0.26, updates clamped to [-0.5·F_s, +0.1·F_s]).
func DefaultConfig() Config { return controller.DefaultConfig() }

// Baseline policies from the paper's evaluation (§IV-B).
type (
	// LocalOnly never offloads.
	LocalOnly = baselines.LocalOnly
	// AlwaysOffload ships every frame regardless of feedback.
	AlwaysOffload = baselines.AlwaysOffload
	// AllOrNothing is the DeepDecision-style heartbeat baseline.
	AllOrNothing = baselines.AllOrNothing
)

// NewAllOrNothing returns the DeepDecision-style baseline in its paper
// configuration.
func NewAllOrNothing() *AllOrNothing { return baselines.NewAllOrNothing() }

// Simulation API.
type (
	// ScenarioConfig describes a complete simulated experiment.
	ScenarioConfig = scenario.Config
	// ScenarioResult is a completed run's traces and summaries.
	ScenarioResult = scenario.Result
	// PolicyFactory builds fresh policy instances for a scenario.
	PolicyFactory = scenario.PolicyFactory
)

// RunScenario executes a simulated experiment to completion.
func RunScenario(cfg ScenarioConfig) *ScenarioResult { return scenario.Run(cfg) }

// Paper experiment presets (see DESIGN.md's per-experiment index).
var (
	// NetworkExperiment is the Figure 3 / Table V setup.
	NetworkExperiment = scenario.NetworkExperiment
	// ServerLoadExperiment is the Figure 4 / Table VI setup.
	ServerLoadExperiment = scenario.ServerLoadExperiment
	// TuningExperiment is the Figure 2 setup for a (K_P, K_D) pair.
	TuningExperiment = scenario.TuningExperiment
)
